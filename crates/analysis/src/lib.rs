//! `barre-analysis`: in-tree determinism & panic-safety linter.
//!
//! The paper's headline property is bit-for-bit reproducible simulation;
//! this crate is the static pass that keeps the codebase honest about it.
//! A small hand-rolled lexer ([`lexer`]) strips comments/strings/raw
//! strings so rule tokens inside them never fire, and a token-pattern
//! rule engine ([`rules`]) reports violations with file:line, rule ID,
//! and a suggested fix. Zero external dependencies by design — the
//! workspace builds offline.
//!
//! Run it via `barre lint` (human output) or `barre lint --json`.
//! See DESIGN.md "Determinism & panic-safety rules" for the rule table
//! and waiver syntax.

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{render_human, render_json};
pub use rules::{lint_source, Diagnostic, FileLint};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregated result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unwaived violations, ordered by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations silenced by justified waivers.
    pub waived: usize,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into: build output, VCS metadata, and the
/// linter's own rule fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Lints every `.rs` file under `root` (a workspace checkout).
///
/// Files are visited in sorted path order so the report is deterministic.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads. A file
/// that is not valid UTF-8 is reported as an `InvalidData` error.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 path"))?;
        let fl = lint_source(&rel_str, &src);
        report.files_scanned += 1;
        report.waived += fl.waived;
        report.diagnostics.extend(fl.diagnostics);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files below `dir`, storing paths relative
/// to `root`. Directory entries are sorted before descending so the walk
/// order never depends on the filesystem.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_starts_clean() {
        let r = LintReport::default();
        assert!(r.is_clean());
        assert_eq!(r.files_scanned, 0);
    }
}
