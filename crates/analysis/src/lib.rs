//! `barre-analysis`: in-tree determinism & panic-safety analyzer.
//!
//! The paper's headline property is bit-for-bit reproducible simulation;
//! this crate is the static pass that keeps the codebase honest about
//! it. It runs in two layers over a single lex of each file:
//!
//! 1. **Token rules** ([`rules`]): D001–D005, P001, C001/C002, W001,
//!    A001 — pattern matches over the comment/string-stripped token
//!    stream.
//! 2. **Index passes** ([`passes`]): a hand-rolled item-level parser
//!    ([`parser`]) builds a workspace symbol index ([`index`]) and an
//!    approximate call graph ([`callgraph`]), powering P002
//!    (interprocedural panic reachability with printed call paths),
//!    D004 (floats in sim-state structs) and R001 (the
//!    parallel-readiness audit gating ROADMAP item 2).
//!
//! Findings can be silenced three ways, in increasing blast radius:
//! an inline `// barre:allow(RULE) <reason>` waiver, an entry in
//! `lint-baseline.json` ([`baseline`], keyed line-independently), or a
//! rule-level fix via `barre lint --fix` ([`fix`]). Output renders as
//! human text, `barre-lint/2` JSON ([`report`]) or SARIF 2.1.0
//! ([`sarif`]). Zero external dependencies by design — the workspace
//! builds offline.
//!
//! Run it via `barre lint`; see DESIGN.md §4.11 for the architecture
//! and the full rule table.

pub mod baseline;
pub mod callgraph;
pub mod fix;
pub mod index;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod report;
pub mod rules;
pub mod sarif;

pub use baseline::{Baseline, BaselineEntry};
pub use passes::{Readiness, WaivedFinding};
pub use report::{render_human, render_json};
pub use rules::{lint_source, Diagnostic, FileLint};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Options for a workspace analysis run.
#[derive(Default)]
pub struct AnalyzeOptions {
    /// Accepted findings to subtract from the report.
    pub baseline: Option<Baseline>,
}

/// Aggregated result of analyzing a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Active (unwaived, unbaselined) violations, ordered by
    /// (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations silenced by justified waivers.
    pub waived: usize,
    /// Violations matched by the baseline file.
    pub baselined: usize,
    /// Baseline entries that matched nothing (prune candidates).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Waived index-pass findings with their reasons (feeds the
    /// `--parallel-readiness` report).
    pub waived_findings: Vec<WaivedFinding>,
    /// R001 audit summary.
    pub readiness: Readiness,
}

impl LintReport {
    /// Whether the workspace is clean (no active violations).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into: build output, VCS metadata, and the
/// linter's own rule fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Analyzes a set of in-memory sources: token rules per file, then the
/// index passes across all of them, then baseline subtraction. `sources`
/// are `(workspace-relative path, contents)` pairs; callers sort them
/// for deterministic output.
pub fn analyze_sources(sources: &[(String, String)], opts: &AnalyzeOptions) -> LintReport {
    let mut report = LintReport {
        files_scanned: sources.len(),
        ..LintReport::default()
    };

    // One lex + parse per file, shared by both layers.
    let idx = index::SymbolIndex::build(sources);

    let mut all: Vec<Diagnostic> = Vec::new();
    for entry in &idx.files {
        let fl = rules::lint_lexed(&entry.path, &entry.lex, &entry.test_mask);
        report.waived += fl.waived;
        all.extend(fl.diagnostics);
    }

    let passes = passes::run(&idx);
    report.waived += passes.waived.len();
    report.waived_findings = passes.waived;
    report.readiness = passes.readiness;
    all.extend(passes.diagnostics);

    if let Some(bl) = &opts.baseline {
        let (active, baselined, stale) = baseline::apply(all, bl);
        all = active;
        report.baselined = baselined;
        report.stale_baseline = stale;
    }

    all.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.diagnostics = all;
    report
}

/// Analyzes every `.rs` file under `root` (a workspace checkout).
///
/// Files are visited in sorted path order so the report is deterministic.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads. A file
/// that is not valid UTF-8 is reported as an `InvalidData` error.
pub fn analyze_workspace(root: &Path, opts: &AnalyzeOptions) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 path"))?;
        sources.push((rel_str, src));
    }
    Ok(analyze_sources(&sources, opts))
}

/// Analyzes a workspace with default options (no baseline). Kept as the
/// stable entry point for callers that predate [`AnalyzeOptions`].
///
/// # Errors
///
/// See [`analyze_workspace`].
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    analyze_workspace(root, &AnalyzeOptions::default())
}

/// Recursively collects `.rs` files below `dir`, storing paths relative
/// to `root`. Directory entries are sorted before descending so the walk
/// order never depends on the filesystem.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_starts_clean() {
        let r = LintReport::default();
        assert!(r.is_clean());
        assert_eq!(r.files_scanned, 0);
    }

    #[test]
    fn analyze_sources_merges_token_and_index_passes() {
        let sources = vec![
            (
                "crates/system/src/machine.rs".to_string(),
                "pub struct Machine { m: HashMap<u64, u64> }\n".to_string(),
            ),
            (
                "crates/sim/src/s.rs".to_string(),
                "pub struct SimStats { rate: f64 }\n".to_string(),
            ),
        ];
        let r = analyze_sources(&sources, &AnalyzeOptions::default());
        let rules: Vec<&str> = r.diagnostics.iter().map(|d| d.rule).collect();
        // D001 (token) + A001 (token, undocumented pub in system) from
        // file 1; D004 (index pass) from file 2.
        assert!(rules.contains(&"D001"), "{rules:?}");
        assert!(rules.contains(&"D004"), "{rules:?}");
        assert_eq!(r.files_scanned, 2);
    }

    #[test]
    fn baseline_subtracts_and_reports_stale() {
        let sources = vec![(
            "crates/sim/src/s.rs".to_string(),
            "pub struct SimStats { rate: f64 }\n".to_string(),
        )];
        let bl = baseline::parse_baseline(&baseline::render_baseline(&[
            BaselineEntry {
                rule: "D004".to_string(),
                file: "crates/sim/src/s.rs".to_string(),
                symbol: "SimStats::rate".to_string(),
                justification: "derived output, never fed back into sim state".to_string(),
            },
            BaselineEntry {
                rule: "D004".to_string(),
                file: "crates/sim/src/gone.rs".to_string(),
                symbol: "Gone::x".to_string(),
                justification: "stale".to_string(),
            },
        ]))
        .expect("baseline parses");
        let r = analyze_sources(&sources, &AnalyzeOptions { baseline: Some(bl) });
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.baselined, 1);
        assert_eq!(r.stale_baseline.len(), 1);
        assert_eq!(r.stale_baseline[0].symbol, "Gone::x");
    }
}
