//! Approximate call graph + interprocedural panic reachability (P002).
//!
//! Edges are resolved by name with three precision tiers:
//!
//! * `Type::method(…)` and `self.method(…)` resolve **exactly** via the
//!   qualified-name table (no fallback, so `Vec::with_capacity` never
//!   links anywhere);
//! * `self.field.method(…)` resolves through the field's declared type
//!   identifiers — `self.pec.insert(…)` links to `PecBuffer::insert`
//!   only;
//! * any other receiver (locals, call chains) links to every workspace
//!   method with that name, **except** names that collide with the std
//!   prelude (`map`, `get`, `len`, `push`, …): linking those would wire
//!   `Option::map` to `PageTable::map` and drown the report. The
//!   tradeoff is explicit: a panic path through a std-colliding method
//!   on a local is missed, a path through a `self.field` or qualified
//!   call never is.
//!
//! Panic *sources* are `.unwrap()` / `.expect()` / `panic!` /
//! `unreachable!` and index expressions (`x[i]`) in non-test library
//! code. A source vanishes when its line carries a justified
//! `barre:allow(P001)` (the call was vetted as can't-panic) or
//! `barre:allow(P002)` (reachability accepted) waiver — waiving the
//! symptom at the entry point is possible too, but waiving the source
//! clears every path through it at once.

use std::collections::{BTreeMap, VecDeque};

use crate::index::{FnId, SymbolIndex};
use crate::lexer::TokKind;
use crate::parser::is_keyword;

/// What kind of panic a source site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)`.
    UnwrapFamily,
    /// `panic!` / `unreachable!`.
    PanicMacro,
    /// An index expression (`x[i]` — slice/Vec indexing can panic).
    Indexing,
}

impl PanicKind {
    /// Short human label used in call-path diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::UnwrapFamily => "unwrap/expect",
            PanicKind::PanicMacro => "panic!/unreachable!",
            PanicKind::Indexing => "indexing",
        }
    }
}

/// One panic source inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Source classification.
    pub kind: PanicKind,
    /// Offending token text (`unwrap`, `panic`, the indexed name, …).
    pub what: String,
    /// 1-based source line of the site.
    pub line: u32,
}

/// The workspace call graph over dense fn numbers (see
/// [`SymbolIndex::fn_ids`] for the dense ↔ [`FnId`] mapping).
pub struct CallGraph {
    /// Dense-number → FnId, in (file, fn) order.
    pub ids: Vec<FnId>,
    /// Callee lists per function, sorted and deduplicated.
    pub callees: Vec<Vec<usize>>,
    /// First unwaived panic source in each function's own body.
    pub direct: Vec<Option<PanicSite>>,
    /// Panic sources silenced by a justified P002 waiver:
    /// (file, line, token, reason).
    pub waived_sources: Vec<(String, u32, String, String)>,
}

/// Shortest-path panic reachability over the call graph.
pub struct Reach {
    /// Hop count to the nearest function with a direct panic source
    /// (`0` = the function itself panics); `u32::MAX` = unreachable.
    pub dist: Vec<u32>,
    /// Next hop toward that nearest panic (for witness paths).
    pub next: Vec<Option<usize>>,
}

/// Builds the call graph and panic-source table from the index.
pub fn build(index: &SymbolIndex) -> CallGraph {
    let ids = index.fn_ids();
    let dense: BTreeMap<FnId, usize> = ids.iter().enumerate().map(|(d, id)| (*id, d)).collect();
    let mut callees = vec![Vec::new(); ids.len()];
    let mut direct = vec![None; ids.len()];
    let mut waived_sources = Vec::new();

    for (d, id) in ids.iter().enumerate() {
        let entry = &index.files[id.0];
        let f = &entry.ast.fns[id.1];
        let Some((s, e)) = f.body else { continue };
        let toks = &entry.lex.tokens;
        let mut targets: Vec<usize> = Vec::new();
        for i in s..=e.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokKind::Ident || is_keyword(&t.text) {
                // Panic sources can also sit on punctuation (indexing).
                if t.is_punct('[') && is_postfix_index(toks, i) {
                    record_panic(
                        &mut direct[d],
                        entry,
                        PanicSite {
                            kind: PanicKind::Indexing,
                            what: indexed_name(toks, i),
                            line: t.line,
                        },
                        &mut waived_sources,
                    );
                }
                continue;
            }
            let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev_is = |c: char| i > 0 && toks[i - 1].is_punct(c);
            // Panic sources.
            if prev_is('.') && (t.text == "unwrap" || t.text == "expect") && next_is('(') {
                record_panic(
                    &mut direct[d],
                    entry,
                    PanicSite {
                        kind: PanicKind::UnwrapFamily,
                        what: t.text.clone(),
                        line: t.line,
                    },
                    &mut waived_sources,
                );
                continue;
            }
            if (t.text == "panic" || t.text == "unreachable") && next_is('!') {
                record_panic(
                    &mut direct[d],
                    entry,
                    PanicSite {
                        kind: PanicKind::PanicMacro,
                        what: format!("{}!", t.text),
                        line: t.line,
                    },
                    &mut waived_sources,
                );
                continue;
            }
            // Call sites.
            if !next_is('(') {
                continue;
            }
            if prev_is('.') {
                resolve_method(
                    index,
                    &dense,
                    f.self_ty.as_deref(),
                    receiver_of(toks, i),
                    &t.text,
                    &mut targets,
                );
            } else if is_qualified(toks, i) {
                let ty = qualifier_of(toks, i, f.self_ty.as_deref());
                resolve_qualified(index, &dense, &ty, &t.text, &mut targets);
            } else {
                resolve_free(index, &dense, id.0, &t.text, &mut targets);
            }
        }
        targets.sort_unstable();
        targets.dedup();
        // A function never needs a self-loop for reachability.
        targets.retain(|&c| c != d);
        callees[d] = targets;
    }
    CallGraph {
        ids,
        callees,
        direct,
        waived_sources,
    }
}

/// Whether the `[` at `i` is a postfix index expression: it must follow
/// a value-producing token (identifier, `]`, or `)`), which excludes
/// attributes (`#[`), array literals (`= [`), macro brackets (`vec![`)
/// and slice patterns (`let [a, b]`).
fn is_postfix_index(toks: &[crate::lexer::Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !is_keyword(&prev.text),
        TokKind::Punct => prev.is_punct(']') || prev.is_punct(')'),
        TokKind::Number => false,
    }
}

/// Best-effort name of the indexed expression (for the diagnostic).
fn indexed_name(toks: &[crate::lexer::Token], bracket: usize) -> String {
    let mut j = bracket;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            return format!("{}[…]", t.text);
        }
        if !(t.is_punct(']') || t.is_punct(')') || t.is_punct('.')) {
            break;
        }
    }
    "[…]".to_string()
}

/// Records a panic site unless a justified P001/P002 waiver covers its
/// line, keeping only the first site per function. P002-waived sites are
/// logged (with the reason) for the report; P001-waived sites were
/// already tallied by the token rules.
fn record_panic(
    slot: &mut Option<PanicSite>,
    entry: &crate::index::FileEntry,
    site: PanicSite,
    waived: &mut Vec<(String, u32, String, String)>,
) {
    // Sites never arise from test code or panic-tolerant frontends.
    if entry.scope.test_file || entry.scope.panic_ok {
        return;
    }
    let covering = entry.lex.waivers.iter().find(|w| {
        (w.line == site.line || w.line + 1 == site.line)
            && w.has_reason
            && w.rules.iter().any(|r| r == "P001" || r == "P002")
    });
    if let Some(w) = covering {
        if w.rules.iter().any(|r| r == "P002") {
            waived.push((entry.path.clone(), site.line, site.what, w.reason.clone()));
        }
        return;
    }
    if slot.is_none() {
        *slot = Some(site);
    }
}

/// Whether the call at `i` is qualified (`…::name(`).
fn is_qualified(toks: &[crate::lexer::Token], i: usize) -> bool {
    i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':')
}

/// The qualifying segment of `Q::name(` (with `Self` resolved).
fn qualifier_of(toks: &[crate::lexer::Token], i: usize, self_ty: Option<&str>) -> String {
    let q = toks
        .get(i.wrapping_sub(3))
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    if q == "Self" {
        self_ty.unwrap_or("Self").to_string()
    } else {
        q
    }
}

/// What a method call's receiver looks like, token-wise.
enum Receiver {
    /// `self.method(…)`.
    SelfDirect,
    /// `self.field.method(…)` — the field name.
    SelfField(String),
    /// Anything else: locals, temporaries, call chains.
    Unknown,
}

/// Classifies the receiver of the `.name(` call at `i`.
fn receiver_of(toks: &[crate::lexer::Token], i: usize) -> Receiver {
    let ident_at = |j: usize| -> Option<&str> {
        toks.get(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    if ident_at(i.wrapping_sub(2)) == Some("self") {
        return Receiver::SelfDirect;
    }
    if i >= 4 && toks[i - 3].is_punct('.') && ident_at(i - 4) == Some("self") {
        if let Some(field) = ident_at(i - 2) {
            return Receiver::SelfField(field.to_string());
        }
    }
    Receiver::Unknown
}

/// Method names that collide with the std prelude (Option/Result,
/// Iterator, Vec/slice, String, maps). An unknown receiver calling one
/// of these is overwhelmingly a std call; linking it to a same-named
/// workspace method would connect everything to everything.
const STD_COLLIDING: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "back",
    "binary_search",
    "chain",
    "clear",
    "clone",
    "collect",
    "contains",
    "contains_key",
    "count",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fold",
    "for_each",
    "front",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "or_else",
    "parse",
    "peek",
    "peekable",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_front",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "split_at",
    "starts_with",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "trim",
    "truncate",
    "values",
    "write",
    "zip",
];

/// `.name(…)`: `self.` resolves via the impl type exactly;
/// `self.field.` resolves through the field's declared type; unknown
/// receivers link by name unless the name is std-colliding.
fn resolve_method(
    index: &SymbolIndex,
    dense: &BTreeMap<FnId, usize>,
    self_ty: Option<&str>,
    receiver: Receiver,
    name: &str,
    targets: &mut Vec<usize>,
) {
    match receiver {
        Receiver::SelfDirect => {
            if let Some(ty) = self_ty {
                if let Some(ids) = index.fns_by_qual.get(&format!("{ty}::{name}")) {
                    targets.extend(ids.iter().filter_map(|id| dense.get(id)));
                }
            }
        }
        Receiver::SelfField(field) => {
            let mut resolved = false;
            if let Some(ty) = self_ty {
                for ident in field_type_idents(index, ty, &field) {
                    if let Some(ids) = index.fns_by_qual.get(&format!("{ident}::{name}")) {
                        targets.extend(ids.iter().filter_map(|id| dense.get(id)));
                        resolved = true;
                    }
                }
            }
            if !resolved {
                resolve_any_method(index, dense, name, targets);
            }
        }
        Receiver::Unknown => resolve_any_method(index, dense, name, targets),
    }
}

/// Type identifiers of field `field` on every workspace type named `ty`.
fn field_type_idents(index: &SymbolIndex, ty: &str, field: &str) -> Vec<String> {
    let mut idents = Vec::new();
    if let Some(decls) = index.types_by_name.get(ty) {
        for &(fi, ti) in decls {
            for fld in &index.files[fi].ast.types[ti].fields {
                if fld.name == field {
                    idents.extend(fld.type_idents.iter().cloned());
                }
            }
        }
    }
    idents
}

/// Fallback by-name method resolution, gated on the std-collision list.
fn resolve_any_method(
    index: &SymbolIndex,
    dense: &BTreeMap<FnId, usize>,
    name: &str,
    targets: &mut Vec<usize>,
) {
    if STD_COLLIDING.contains(&name) {
        return;
    }
    if let Some(ids) = index.fns_by_name.get(name) {
        targets.extend(
            ids.iter()
                .filter(|id| index.fn_item(**id).self_ty.is_some())
                .filter_map(|id| dense.get(id)),
        );
    }
}

/// `Q::name(…)`: exact `Type::method` matches; a lowercase qualifier is
/// a module path, which resolves by bare name instead. Unresolved
/// qualified calls (std/core types) create no edges.
fn resolve_qualified(
    index: &SymbolIndex,
    dense: &BTreeMap<FnId, usize>,
    qualifier: &str,
    name: &str,
    targets: &mut Vec<usize>,
) {
    if let Some(ids) = index.fns_by_qual.get(&format!("{qualifier}::{name}")) {
        targets.extend(ids.iter().filter_map(|id| dense.get(id)));
        return;
    }
    if qualifier.chars().next().is_some_and(|c| c.is_lowercase()) {
        if let Some(ids) = index.fns_by_name.get(name) {
            targets.extend(ids.iter().filter_map(|id| dense.get(id)));
        }
    }
}

/// Bare `name(…)`: functions named `name` in the same file shadow the
/// workspace-wide candidates.
fn resolve_free(
    index: &SymbolIndex,
    dense: &BTreeMap<FnId, usize>,
    file_idx: usize,
    name: &str,
    targets: &mut Vec<usize>,
) {
    let Some(ids) = index.fns_by_name.get(name) else {
        return;
    };
    let local: Vec<&FnId> = ids.iter().filter(|id| id.0 == file_idx).collect();
    if local.is_empty() {
        targets.extend(ids.iter().filter_map(|id| dense.get(id)));
    } else {
        targets.extend(local.into_iter().filter_map(|id| dense.get(id)));
    }
}

impl CallGraph {
    /// Multi-source shortest-hop reachability toward panic sources
    /// (reverse BFS from every function with a direct source). Adjacency
    /// lists are sorted and the worklist is seeded in dense order, so
    /// distances *and* witness paths are deterministic.
    pub fn panic_reach(&self) -> Reach {
        let n = self.ids.len();
        // Reverse edges: callers[c] = functions that call c.
        let mut callers = vec![Vec::new(); n];
        for (caller, cs) in self.callees.iter().enumerate() {
            for &c in cs {
                callers[c].push(caller);
            }
        }
        let mut dist = vec![u32::MAX; n];
        let mut next = vec![None; n];
        let mut queue = VecDeque::new();
        for (d, site) in self.direct.iter().enumerate() {
            if site.is_some() {
                dist[d] = 0;
                queue.push_back(d);
            }
        }
        while let Some(c) = queue.pop_front() {
            for &caller in &callers[c] {
                if dist[caller] == u32::MAX {
                    dist[caller] = dist[c] + 1;
                    next[caller] = Some(c);
                    queue.push_back(caller);
                }
            }
        }
        Reach { dist, next }
    }

    /// The witness call chain from `start` to the nearest panicking
    /// function (inclusive), as dense numbers. Empty if unreachable.
    pub fn witness(&self, reach: &Reach, start: usize) -> Vec<usize> {
        if reach.dist[start] == u32::MAX {
            return Vec::new();
        }
        let mut path = vec![start];
        let mut cur = start;
        while let Some(nx) = reach.next[cur] {
            path.push(nx);
            cur = nx;
            if path.len() > 64 {
                break; // defensive bound; BFS paths are loop-free
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(pairs: &[(&str, &str)]) -> (SymbolIndex, CallGraph) {
        let sources: Vec<(String, String)> = pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let idx = SymbolIndex::build(&sources);
        let g = build(&idx);
        (idx, g)
    }

    fn dense_of(idx: &SymbolIndex, g: &CallGraph, qual: &str) -> usize {
        g.ids
            .iter()
            .position(|id| idx.fn_item(*id).qual == qual)
            .expect("fn present")
    }

    #[test]
    fn cross_file_path_to_indexing() {
        let (idx, g) = graph(&[
            (
                "crates/system/src/a.rs",
                "pub fn entry(x: u64) -> u64 { helper(x) }",
            ),
            (
                "crates/sim/src/b.rs",
                "pub fn helper(x: u64) -> u64 { let v = vec![1, 2]; v[x as usize] }",
            ),
        ]);
        let reach = g.panic_reach();
        let entry = dense_of(&idx, &g, "entry");
        let helper = dense_of(&idx, &g, "helper");
        assert_eq!(reach.dist[helper], 0);
        assert_eq!(reach.dist[entry], 1);
        assert_eq!(g.witness(&reach, entry), vec![entry, helper]);
        assert_eq!(g.direct[helper].as_ref().unwrap().kind, PanicKind::Indexing);
    }

    #[test]
    fn qualified_calls_resolve_exactly_and_std_does_not_link() {
        let (idx, g) = graph(&[(
            "crates/sim/src/x.rs",
            "struct A; struct B;
             impl A { pub fn go() { B::boom(); Vec::with_capacity(4); } }
             impl B { pub fn boom() { panic!(\"x\") } }
             pub fn with_capacity(n: usize) { let v = vec![0]; let _ = v[n]; }",
        )]);
        let reach = g.panic_reach();
        let go = dense_of(&idx, &g, "A::go");
        // A::go links to B::boom but NOT to the free fn `with_capacity`
        // (Vec:: is qualified and unresolved).
        assert_eq!(reach.dist[go], 1);
        let boom = dense_of(&idx, &g, "B::boom");
        assert_eq!(g.callees[go], vec![boom]);
    }

    #[test]
    fn waived_sources_are_not_sources() {
        let (idx, g) = graph(&[(
            "crates/sim/src/x.rs",
            "pub fn a() { b() }
             // barre:allow(P002) bounds guaranteed by construction
             pub fn b() { let v = [1, 2]; let _ = v[1]; }",
        )]);
        // The waiver sits on the line above b's body line… the indexing
        // is on the same line as the fn, covered by line+1 matching.
        let reach = g.panic_reach();
        let a = dense_of(&idx, &g, "a");
        assert_eq!(reach.dist[a], u32::MAX);
        assert_eq!(g.waived_sources.len(), 1);
        assert!(g.waived_sources[0].3.contains("bounds guaranteed"));
    }

    #[test]
    fn test_code_and_frontends_are_not_sources() {
        let (_, g) = graph(&[
            (
                "crates/cli/src/lib.rs",
                "pub fn frontend() { opt.unwrap(); }",
            ),
            (
                "crates/sim/tests/it.rs",
                "pub fn test_helper() { opt.unwrap(); }",
            ),
        ]);
        assert!(g.direct.iter().all(|d| d.is_none()));
    }

    #[test]
    fn method_calls_prefer_own_impl() {
        let (idx, g) = graph(&[(
            "crates/sim/src/x.rs",
            "struct S { v: Vec<u64> }
             impl S {
                 pub fn outer(&self) -> u64 { self.inner() }
                 fn inner(&self) -> u64 { self.v[0] }
             }
             struct T;
             impl T { pub fn inner(&self) -> u64 { 7 } }",
        )]);
        let outer = dense_of(&idx, &g, "S::outer");
        let inner = dense_of(&idx, &g, "S::inner");
        assert_eq!(g.callees[outer], vec![inner], "resolved to S::inner only");
    }
}
