//! A minimal recursive-descent JSON reader (zero deps, no panics).
//!
//! Used to load `lint-baseline.json` and to structurally validate the
//! SARIF export in tests. Parses the full JSON grammar; numbers are kept
//! as `f64`, which is exact for every integer the lint tooling emits.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            let end = p.pos + 4;
            let s = p
                .bytes
                .get(p.pos..end)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or("truncated \\u escape")?;
            let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            self.eat_lit("\\u")?;
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("unpaired surrogate".to_string());
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| "invalid codepoint".to_string())
    }
}

/// Byte width of a UTF-8 sequence from its lead byte.
fn utf8_width(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"schema": "barre-lint/2", "n": 3, "ok": true,
                      "items": [{"rule": "D001", "line": 12}, null],
                      "msg": "a \"quoted\" path\\n"}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("barre-lint/2"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        let items = v.get("items").and_then(Json::as_arr).expect("arr");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("rule").and_then(Json::as_str), Some("D001"));
        assert_eq!(items[1], Json::Null);
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        let v = parse(r#""tab\there é 😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("tab\there é 😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn roundtrips_lint_report_shape() {
        // The shape report.rs emits must stay parseable by this reader.
        let doc = r#"{"files_scanned": 2, "waived": 0, "diagnostics": []}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("files_scanned").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("diagnostics").and_then(Json::as_arr), Some(&[][..]));
    }
}
