//! The lint baseline: known findings accepted with a justification.
//!
//! `lint-baseline.json` lets a new rule land with the workspace's
//! pre-existing findings acknowledged instead of waived inline at every
//! site. Entries are keyed **line-independently** on
//! `(rule, file, symbol)` — `symbol` is the qualified item the
//! diagnostic anchors to (entry fn, `Struct::field`, global), falling
//! back to the message text for token-local rules — so ordinary edits
//! that shift line numbers do not invalidate the baseline, while moving
//! a finding to a new file or symbol surfaces it again.
//!
//! A baseline entry that matches nothing is *stale*: reported as a
//! warning so the file gets pruned, never as an error (deleting code
//! must not fail the lint).

use crate::json::{parse, Json};
use crate::report::json_str;
use crate::rules::Diagnostic;

/// One accepted finding.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Rule ID (`P002`, `D004`, …).
    pub rule: String,
    /// Workspace-relative file the finding anchors to.
    pub file: String,
    /// Qualified symbol (or message text for symbol-less rules).
    pub symbol: String,
    /// Why the finding is accepted.
    pub justification: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Accepted findings, in file order.
    pub entries: Vec<BaselineEntry>,
}

/// The line-independent identity of a diagnostic for baseline matching.
pub fn key_of(d: &Diagnostic) -> (String, String, String) {
    let symbol = if d.symbol.is_empty() {
        d.message.clone()
    } else {
        d.symbol.clone()
    };
    (d.rule.to_string(), d.file.clone(), symbol)
}

/// Parses `lint-baseline.json`. Unknown fields are ignored so the
/// format can grow; missing required fields are an error.
pub fn parse_baseline(src: &str) -> Result<Baseline, String> {
    let doc = parse(src).map_err(|e| format!("baseline: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "barre-lint-baseline/1" {
        return Err(format!(
            "baseline: unsupported schema `{schema}` (want barre-lint-baseline/1)"
        ));
    }
    let Some(items) = doc.get("findings").and_then(Json::as_arr) else {
        return Err("baseline: missing `findings` array".to_string());
    };
    let mut entries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field = |k: &str| -> Result<String, String> {
            item.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline: finding {i} missing `{k}`"))
        };
        entries.push(BaselineEntry {
            rule: field("rule")?,
            file: field("file")?,
            symbol: field("symbol")?,
            justification: field("justification")?,
        });
    }
    Ok(Baseline { entries })
}

/// Serialises a baseline (stable order: file, rule, symbol) for
/// `--write-baseline`.
pub fn render_baseline(entries: &[BaselineEntry]) -> String {
    let mut sorted: Vec<&BaselineEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (&a.file, &a.rule, &a.symbol).cmp(&(&b.file, &b.rule, &b.symbol)));
    sorted.dedup_by(|a, b| (&a.file, &a.rule, &a.symbol) == (&b.file, &b.rule, &b.symbol));
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"barre-lint-baseline/1\",\n  \"findings\": [");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"symbol\": {}, \"justification\": {}}}",
            json_str(&e.rule),
            json_str(&e.file),
            json_str(&e.symbol),
            json_str(&e.justification)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Splits diagnostics into (active, baselined) against the baseline and
/// returns the stale entries that matched nothing.
pub fn apply(
    diagnostics: Vec<Diagnostic>,
    baseline: &Baseline,
) -> (Vec<Diagnostic>, usize, Vec<BaselineEntry>) {
    let mut used = vec![false; baseline.entries.len()];
    let mut active = Vec::new();
    let mut baselined = 0usize;
    for d in diagnostics {
        let (rule, file, symbol) = key_of(&d);
        let hit = baseline
            .entries
            .iter()
            .position(|e| e.rule == rule && e.file == file && e.symbol == symbol);
        match hit {
            Some(i) => {
                used[i] = true;
                // Every entry covers all diagnostics with its key, so a
                // fn with two identical-symbol findings needs one entry.
                if let Some(more) = baseline.entries.iter().enumerate().find(|(j, e)| {
                    *j != i && !used[*j] && e.rule == rule && e.file == file && e.symbol == symbol
                }) {
                    used[more.0] = true;
                }
                baselined += 1;
            }
            None => active.push(d),
        }
    }
    let stale = baseline
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    (active, baselined, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, symbol: &str, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message: format!("finding in {symbol}"),
            suggestion: "",
            symbol: symbol.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_line_independent_matching() {
        let entries = vec![BaselineEntry {
            rule: "P002".to_string(),
            file: "crates/system/src/machine.rs".to_string(),
            symbol: "Machine::step".to_string(),
            justification: "indexing bounded by chiplet count".to_string(),
        }];
        let text = render_baseline(&entries);
        let parsed = parse_baseline(&text).expect("parses");
        assert_eq!(parsed.entries, entries);

        // Line number differs from whatever it was when baselined.
        let diags = vec![
            diag("P002", "crates/system/src/machine.rs", "Machine::step", 991),
            diag("P002", "crates/system/src/machine.rs", "Machine::run", 10),
        ];
        let (active, baselined, stale) = apply(diags, &parsed);
        assert_eq!(baselined, 1);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].symbol, "Machine::run");
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported_not_fatal() {
        let parsed = parse_baseline(&render_baseline(&[BaselineEntry {
            rule: "D004".to_string(),
            file: "crates/sim/src/gone.rs".to_string(),
            symbol: "Gone::f".to_string(),
            justification: "was removed".to_string(),
        }]))
        .expect("parses");
        let (active, baselined, stale) = apply(Vec::new(), &parsed);
        assert!(active.is_empty());
        assert_eq!(baselined, 0);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].symbol, "Gone::f");
    }

    #[test]
    fn symbol_less_rules_fall_back_to_message() {
        let d = Diagnostic {
            file: "crates/sim/src/x.rs".to_string(),
            line: 7,
            rule: "D001",
            message: "HashMap in a sim-facing crate".to_string(),
            suggestion: "",
            symbol: String::new(),
        };
        let (_, _, sym) = key_of(&d);
        assert_eq!(sym, "HashMap in a sim-facing crate");
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(parse_baseline(r#"{"schema": "nope", "findings": []}"#).is_err());
    }
}
