//! The index-level passes: rules that need the whole workspace, not one
//! file's tokens.
//!
//! * **P002** — interprocedural panic reachability. Every plain `pub fn`
//!   in the API-surface crates (`core`, `system`, `serve`) is an entry
//!   point; if its call closure reaches an unwaived `unwrap`/`expect`/
//!   `panic!`/`unreachable!` or index expression in non-test library
//!   code, the diagnostic prints the concrete (shortest) call path.
//! * **D004** — float fields in sim-state structs. Floating-point
//!   accumulation is order-sensitive, so a future chiplet partitioning
//!   that reorders reductions would change results — exactly what the
//!   byte-identical fingerprint guarantee forbids.
//! * **R001** — parallel readiness. Walks the type graph hanging off
//!   `Machine` and flags interior mutability (`Cell`, `RefCell`,
//!   `Mutex`, `RwLock`, `Rc`, `UnsafeCell`) in it, plus `static mut` /
//!   `thread_local!` globals anywhere in sim-state crates. This is the
//!   go/no-go audit for ROADMAP item 2.

use std::collections::BTreeSet;

use crate::callgraph::{self, PanicKind};
use crate::index::SymbolIndex;
use crate::rules::Diagnostic;

/// A finding silenced by a justified waiver — kept with its reason so
/// the `--parallel-readiness` report can show *why* each acceptance.
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    /// Rule ID.
    pub rule: &'static str,
    /// File of the waived site.
    pub file: String,
    /// Line of the waived site.
    pub line: u32,
    /// Qualified symbol.
    pub symbol: String,
    /// The waiver's justification text.
    pub reason: String,
}

/// Summary of the R001 audit for the readiness report.
#[derive(Debug, Default)]
pub struct Readiness {
    /// Root types the audit started from, as `Type (file)` labels.
    pub roots: Vec<String>,
    /// Types reachable from the roots (the audited closure).
    pub types_audited: usize,
}

/// Output of the index-level passes.
#[derive(Debug, Default)]
pub struct PassOutput {
    /// Unwaived diagnostics (P002/D004/R001), unsorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by justified waivers.
    pub waived: Vec<WaivedFinding>,
    /// R001 audit summary.
    pub readiness: Readiness,
}

/// Root types of the R001 audit: the whole simulated machine hangs off
/// these.
const R001_ROOTS: &[&str] = &["Machine"];

/// Interior-mutability / shared-ownership type names R001 flags.
const INTERIOR: &[&str] = &["Cell", "RefCell", "Mutex", "RwLock", "Rc", "UnsafeCell"];

/// Runs every index-level pass.
pub fn run(index: &SymbolIndex) -> PassOutput {
    let mut out = PassOutput::default();
    d004_float_fields(index, &mut out);
    r001_parallel_readiness(index, &mut out);
    p002_panic_reachability(index, &mut out);
    out
}

/// The justified waiver reason covering (`line`, `rule`), if any.
fn waiver_reason(entry: &crate::index::FileEntry, line: u32, rule: &str) -> Option<String> {
    entry
        .lex
        .waivers
        .iter()
        .find(|w| {
            (w.line == line || w.line + 1 == line)
                && w.has_reason
                && w.rules.iter().any(|r| r == rule)
        })
        .map(|w| w.reason.clone())
}

/// Pushes a finding into `out`, honoring waivers.
fn emit(
    out: &mut PassOutput,
    entry: &crate::index::FileEntry,
    rule: &'static str,
    line: u32,
    symbol: String,
    message: String,
    suggestion: &'static str,
) {
    match waiver_reason(entry, line, rule) {
        Some(reason) => out.waived.push(WaivedFinding {
            rule,
            file: entry.path.clone(),
            line,
            symbol,
            reason,
        }),
        None => out.diagnostics.push(Diagnostic {
            file: entry.path.clone(),
            line,
            rule,
            message,
            suggestion,
            symbol,
        }),
    }
}

/// D004: float fields in sim-state structs/enums.
fn d004_float_fields(index: &SymbolIndex, out: &mut PassOutput) {
    for entry in &index.files {
        if !entry.scope.sim_state {
            continue;
        }
        for ty in &entry.ast.types {
            if ty.in_test {
                continue;
            }
            for field in &ty.fields {
                let Some(float) = field
                    .type_idents
                    .iter()
                    .find(|id| *id == "f32" || *id == "f64")
                else {
                    continue;
                };
                emit(
                    out,
                    entry,
                    "D004",
                    field.line,
                    format!("{}::{}", ty.name, field.name),
                    format!(
                        "float field `{}::{}` ({float}) in sim-state: accumulation order \
                         changes results across partitionings",
                        ty.name, field.name
                    ),
                    "store sim-state quantities as fixed-point integers (cycles, bytes, \
                     permilles); floats make results depend on reduction order, which a \
                     parallel partitioning will change",
                );
            }
        }
    }
}

/// R001: interior mutability reachable from `Machine`, plus process
/// globals in sim-state crates.
fn r001_parallel_readiness(index: &SymbolIndex, out: &mut PassOutput) {
    // Type closure from the roots, following field type identifiers to
    // workspace types declared in sim-state files.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in R001_ROOTS {
        if let Some(decls) = index.types_by_name.get(*root) {
            for &(fi, ti) in decls {
                if index.files[fi].scope.sim_state && seen.insert((fi, ti)) {
                    out.readiness.roots.push(format!(
                        "{} ({})",
                        index.files[fi].ast.types[ti].name, index.files[fi].path
                    ));
                    work.push((fi, ti));
                }
            }
        }
    }
    while let Some((fi, ti)) = work.pop() {
        let entry = &index.files[fi];
        let ty = &entry.ast.types[ti];
        for field in &ty.fields {
            for ident in &field.type_idents {
                if INTERIOR.contains(&ident.as_str()) {
                    emit(
                        out,
                        entry,
                        "R001",
                        field.line,
                        format!("{}::{}", ty.name, field.name),
                        format!(
                            "`{}` in `{}::{}` is reachable from Machine state: interior \
                             mutability breaks single-writer partitioning",
                            ident, ty.name, field.name
                        ),
                        "parallel-ready sim state must be plainly owned — replace interior \
                         mutability with explicit ownership, or move the cell outside the \
                         per-chiplet state and merge at deterministic barriers",
                    );
                }
                if let Some(decls) = index.types_by_name.get(ident) {
                    for &(nfi, nti) in decls {
                        if index.files[nfi].scope.sim_state
                            && !index.files[nfi].ast.types[nti].in_test
                            && seen.insert((nfi, nti))
                        {
                            work.push((nfi, nti));
                        }
                    }
                }
            }
        }
    }
    out.readiness.types_audited = seen.len();

    // Process globals are shared state no matter what holds them.
    for entry in &index.files {
        if !entry.scope.sim_state {
            continue;
        }
        for g in &entry.ast.globals {
            if g.in_test {
                continue;
            }
            let what = match g.kind {
                crate::parser::GlobalKind::StaticMut => "static mut",
                crate::parser::GlobalKind::ThreadLocal => "thread_local!",
            };
            emit(
                out,
                entry,
                "R001",
                g.line,
                g.name.clone(),
                format!(
                    "`{what} {}` in a sim-state crate: process-global state defeats \
                     deterministic partitioning",
                    g.name
                ),
                "thread the state through the Machine explicitly; globals are invisible \
                 to the chiplet cut and race under parallel execution",
            );
        }
    }
}

/// P002: panic reachability from the public API surface.
fn p002_panic_reachability(index: &SymbolIndex, out: &mut PassOutput) {
    let graph = callgraph::build(index);
    for (file, line, what, reason) in &graph.waived_sources {
        out.waived.push(WaivedFinding {
            rule: "P002",
            file: file.clone(),
            line: *line,
            symbol: what.clone(),
            reason: reason.clone(),
        });
    }
    let reach = graph.panic_reach();
    for (d, id) in graph.ids.iter().enumerate() {
        let entry = &index.files[id.0];
        if !entry.scope.api_entry || entry.scope.test_file {
            continue;
        }
        let f = index.fn_item(*id);
        if !f.is_pub || f.in_test {
            continue;
        }
        // A direct indexing site is reportable here (P001 does not cover
        // indexing); direct unwrap/panic sites are P001's domain.
        let direct_hit = graph.direct[d]
            .as_ref()
            .filter(|s| s.kind == PanicKind::Indexing);
        let path: Vec<usize> = if direct_hit.is_some() {
            vec![d]
        } else {
            // Shortest path through a callee.
            let best = graph.callees[d]
                .iter()
                .filter(|&&c| reach.dist[c] != u32::MAX)
                .min_by_key(|&&c| (reach.dist[c], c));
            match best {
                Some(&c) => {
                    let mut p = vec![d];
                    p.extend(graph.witness(&reach, c));
                    p
                }
                None => continue,
            }
        };
        let Some(last) = path.last().copied() else {
            continue;
        };
        let Some(site) = graph.direct[last].as_ref() else {
            continue;
        };
        let site_file = &index.files[graph.ids[last].0].path;
        let chain = path
            .iter()
            .map(|&n| index.fn_item(graph.ids[n]).qual.clone())
            .collect::<Vec<_>>()
            .join(" -> ");
        emit(
            out,
            entry,
            "P002",
            f.line,
            f.qual.clone(),
            format!(
                "public `{}` can reach a panic: {chain} ({} `{}` at {site_file}:{})",
                f.qual,
                site.kind.label(),
                site.what,
                site.line
            ),
            "make the closure panic-free (return SimError / use checked access), or \
             waive the *source* site with `// barre:allow(P001) <proof>` — one source \
             waiver clears every path through it",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(pairs: &[(&str, &str)]) -> PassOutput {
        let sources: Vec<(String, String)> = pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        run(&SymbolIndex::build(&sources))
    }

    #[test]
    fn p002_prints_cross_module_call_path() {
        let out = run_on(&[
            (
                "crates/system/src/machine.rs",
                "pub fn step(m: u64) -> u64 { walk(m) }",
            ),
            (
                "crates/mem/src/pt.rs",
                "pub fn walk(x: u64) -> u64 { let f = vec![1]; f[x as usize] }",
            ),
        ]);
        let p002: Vec<&Diagnostic> = out
            .diagnostics
            .iter()
            .filter(|d| d.rule == "P002")
            .collect();
        assert_eq!(p002.len(), 1, "{:?}", out.diagnostics);
        assert_eq!(p002[0].symbol, "step");
        assert!(
            p002[0].message.contains("step -> walk"),
            "{}",
            p002[0].message
        );
        assert!(p002[0].message.contains("crates/mem/src/pt.rs"));
        // `walk` is pub but crates/mem is not an API-entry crate, so it
        // gets no diagnostic of its own.
        assert!(!p002.iter().any(|d| d.symbol == "walk"));
    }

    #[test]
    fn p002_miss_when_closure_is_clean() {
        let out = run_on(&[
            (
                "crates/system/src/machine.rs",
                "pub fn step(m: u64) -> u64 { helper(m) }",
            ),
            (
                "crates/sim/src/h.rs",
                "pub fn helper(x: u64) -> u64 { x.saturating_add(1) }",
            ),
        ]);
        assert!(
            out.diagnostics.iter().all(|d| d.rule != "P002"),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn p002_source_waiver_clears_all_paths() {
        let out = run_on(&[
            (
                "crates/system/src/a.rs",
                "pub fn one(x: u64) -> u64 { shared(x) }\npub fn two(x: u64) -> u64 { shared(x) }",
            ),
            (
                "crates/sim/src/b.rs",
                "pub fn shared(x: u64) -> u64 {\n    let v = vec![1, 2];\n    \
                 // barre:allow(P002) index bounded by the literal above\n    v[x as usize]\n}",
            ),
        ]);
        assert!(out.diagnostics.iter().all(|d| d.rule != "P002"));
        assert_eq!(out.waived.iter().filter(|w| w.rule == "P002").count(), 1);
    }

    #[test]
    fn d004_flags_float_fields_with_symbols() {
        let out = run_on(&[(
            "crates/sim/src/fault.rs",
            "pub struct Plan { pub drop_rate: f64, pub count: u64 }",
        )]);
        let hits: Vec<&Diagnostic> = out
            .diagnostics
            .iter()
            .filter(|d| d.rule == "D004")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].symbol, "Plan::drop_rate");
    }

    #[test]
    fn r001_walks_the_machine_closure_and_respects_waivers() {
        let out = run_on(&[
            (
                "crates/system/src/machine.rs",
                "pub struct Machine { tlb: TlbState, counters: Counters }",
            ),
            (
                "crates/tlb/src/state.rs",
                "pub struct TlbState { entries: Vec<u64>, cache: RefCell<u64> }",
            ),
            (
                "crates/sim/src/counters.rs",
                "pub struct Counters {\n    \
                 // barre:allow(R001) single-threaded today, removed by the item-2 refactor\n    \
                 scratch: Rc<u64>,\n}",
            ),
            // NOT reachable from Machine: no finding even though it has a Mutex.
            (
                "crates/sim/src/pool_state.rs",
                "pub struct PoolSide { lock: Mutex<u64> }",
            ),
        ]);
        let hits: Vec<&Diagnostic> = out
            .diagnostics
            .iter()
            .filter(|d| d.rule == "R001")
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", out.diagnostics);
        assert_eq!(hits[0].symbol, "TlbState::cache");
        let waived: Vec<&WaivedFinding> = out.waived.iter().filter(|w| w.rule == "R001").collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].symbol, "Counters::scratch");
        assert!(waived[0].reason.contains("single-threaded"));
        assert_eq!(out.readiness.roots.len(), 1);
        assert_eq!(out.readiness.types_audited, 3);
    }

    #[test]
    fn r001_flags_globals_regardless_of_closure() {
        let out = run_on(&[(
            "crates/sim/src/g.rs",
            "static mut SCRATCH: u64 = 0;\nthread_local! { static TLS: u64 = 1; }",
        )]);
        let hits: Vec<&str> = out
            .diagnostics
            .iter()
            .filter(|d| d.rule == "R001")
            .map(|d| d.symbol.as_str())
            .collect();
        assert_eq!(hits, vec!["SCRATCH", "TLS"]);
    }
}
