//! Fixture: the R001 parallel-readiness audit. Linted under a synthetic
//! `crates/system/src/` path. `Machine` is the audit root; the RefCell
//! field is an active finding, the waived Rc is counted but silenced,
//! and the Mutex in `Offside` (unreachable from Machine) is ignored.

pub struct Machine {
    pub tlbs: TlbBank,
}

pub struct TlbBank {
    entries: Vec<u64>,
    shootdown_log: RefCell<Vec<u64>>,
    // barre:allow(R001) read-only shared config, replaced by plain ownership in item 2
    config: Rc<u64>,
}

pub struct Offside {
    lock: Mutex<u64>,
}
