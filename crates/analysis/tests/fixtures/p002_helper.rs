//! Fixture: P002 helper module, linted under a synthetic
//! `crates/mem/src/` path (sim-facing, not an API entry crate — its own
//! pub fns get no P002 diagnostics, but panic sources here count).

pub fn walk_table(vpn: u64) -> u64 {
    let slots = table_slots(vpn);
    slots
}

fn table_slots(vpn: u64) -> u64 {
    let table = [0u64; 4];
    table[(vpn & 3) as usize]
}

pub fn clean_lookup(vpn: u64) -> u64 {
    vpn.wrapping_mul(2).rotate_left(1)
}
