//! Fixture: determinism taint in sim-state code. Linted under a
//! synthetic `crates/tlb/src/` path, so `sim_state` scope applies.
//! Expected: two D004 findings (the f64 and f32 fields; `ratio_bp` is
//! fine) and three D005 findings (the AtomicBool field, the AtomicU64
//! parameter, and `Ordering::Relaxed`).

pub struct WalkStats {
    pub hit_rate: f64,
    pub miss_ewma: f32,
    pub ratio_bp: u32,
    pub walks: u64,
}

pub struct Flags {
    stop: AtomicBool,
}

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
