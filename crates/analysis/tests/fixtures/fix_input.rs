//! Fixture: `--fix` input. Contains a reasonless waiver (W001 — gets a
//! TODO scaffold appended) and a wall-clock read (D002 — rewritten to
//! the injected clock with a marker comment). Applying the fixes twice
//! must be byte-identical to applying them once.

use std::collections::HashSet;

// barre:allow(D001)
pub fn tracked(set: &HashSet<u64>) -> usize {
    set.len()
}

pub fn stamp() -> std::time::Instant {
    let t0 = Instant::now();
    t0
}
