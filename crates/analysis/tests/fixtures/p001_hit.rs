// Fixture: P001 positive in production code, negative in test code.
pub fn hot_path(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn also_hot(x: Option<u32>) -> u32 {
    x.expect("value present")
}

pub fn boom() {
    panic!("should not survive review");
}

pub fn cold() {
    unreachable!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        Some(1u32).unwrap();
    }
}
