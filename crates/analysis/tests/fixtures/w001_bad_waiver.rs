// Fixture: W001 — a waiver without a justification reports AND the
// waived rule still fires.
// barre:allow(D001)
use std::collections::HashMap;

pub type T = HashMap<u64, u64>;
