// Fixture: D001 waived — justified waivers silence the rule.
// barre:allow(D001) keyed access only; the map is never iterated
use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u64, u64>, // barre:allow(D001) keyed access only
}
