//! Fixture: P002 entry-point file. Linted under a synthetic
//! `crates/system/src/` path so `api_entry` scope applies.
//! `translate` reaches slice indexing two hops away (via
//! `p002_helper.rs`); `translate_checked` only calls the clean helper
//! and must NOT be flagged.

pub fn translate(vpn: u64) -> u64 {
    walk_table(vpn)
}

pub fn translate_checked(vpn: u64) -> u64 {
    clean_lookup(vpn)
}
