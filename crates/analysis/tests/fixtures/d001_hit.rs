// Fixture: D001 positive — hash collections in sim-facing code.
use std::collections::{HashMap, HashSet};

pub struct Tracker {
    seen: HashSet<u64>,
    counts: HashMap<u64, u32>,
}
