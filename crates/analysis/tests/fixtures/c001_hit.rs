// Fixture: C001 positive — narrowing casts on cycle/address values.
pub fn truncate(total_cycles: u64, vpn: (u64,)) -> (u32, u16) {
    (total_cycles as u32, vpn.0 as u16)
}

pub fn fine(total_cycles: u64, len: u64) -> (u64, u32) {
    // Widening and non-suspicious names never fire.
    (total_cycles as u64, len as u32)
}
