// Fixture: rule tokens inside literals/comments must NOT fire.
// HashMap::new().unwrap() — just a comment
/* Instant::now() and thread_rng() in /* nested */ blocks */

pub fn literals<'a>(x: &'a str) -> String {
    let s = "HashMap::new().unwrap()";
    let raw = r#"panic!("SystemTime") and "quoted" unreachable!()"#;
    let byte = b"HashSet thread_rng";
    let ch = 'u';
    let esc = '\'';
    format!("{s}{raw}{byte:?}{ch}{esc}{x}")
}
