// Fixture: C002 positive — unchecked accumulation on long-lived counters.
// Linted under a synthetic sim-facing path (see tests/fixtures.rs).

pub struct Stats {
    total_bytes: u64,
    total_msgs: u64,
    busy_cycles: u64,
    offset: u64,
}

impl Stats {
    pub fn record(&mut self, bytes: u64, ser: u64) {
        self.total_bytes += bytes; // C002
        self.total_msgs += 1; // C002
        self.busy_cycles += ser; // C002
        // Benign: the accumulated name does not smell like a counter,
        // and the smelly name sits on the RHS of a plain `+`.
        self.offset += bytes + ser;
        // The sanctioned form is silent.
        self.total_bytes = self.total_bytes.saturating_add(bytes);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut busy_cycles = 0u64;
        busy_cycles += 1;
        assert_eq!(busy_cycles, 1);
    }
}
