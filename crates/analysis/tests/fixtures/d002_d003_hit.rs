// Fixture: D002 (wall clock) and D003 (ambient entropy) positives.
use std::time::Instant;

pub fn measure() -> u64 {
    let t = Instant::now();
    let _ = t;
    0
}

pub fn roll() -> u64 {
    let mut h = std::collections::hash_map::RandomState::new();
    let _ = &mut h;
    0
}
