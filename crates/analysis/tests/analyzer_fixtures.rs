//! Runs the index-level passes over the on-disk fixture corpus: P002
//! cross-module reachability, D004/D005 determinism taint, the R001
//! audit, SARIF golden output, and `--fix` idempotence. Fixtures are
//! mounted at synthetic workspace paths so each rule's scope condition
//! is satisfied; the fixtures directory itself is excluded from
//! workspace walks.

use std::fs;
use std::path::Path;

use barre_analysis::{analyze_sources, fix, sarif, AnalyzeOptions, LintReport};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture readable")
}

/// Analyzes fixtures mounted at the given synthetic paths.
fn analyze(mounts: &[(&str, &str)]) -> LintReport {
    let sources: Vec<(String, String)> = mounts
        .iter()
        .map(|(at, name)| (at.to_string(), fixture(name)))
        .collect();
    analyze_sources(&sources, &AnalyzeOptions::default())
}

#[test]
fn p002_cross_module_hit_and_miss() {
    let report = analyze(&[
        ("crates/system/src/entry.rs", "p002_entry.rs"),
        ("crates/mem/src/helper.rs", "p002_helper.rs"),
    ]);
    let p002: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "P002")
        .collect();
    // Hit: `translate` reaches the indexing in table_slots two hops away,
    // and the diagnostic prints the concrete call path and source site.
    let hit = p002
        .iter()
        .find(|d| d.symbol == "translate")
        .expect("translate flagged");
    assert!(
        hit.message
            .contains("translate -> walk_table -> table_slots"),
        "{}",
        hit.message
    );
    assert!(hit.message.contains("crates/mem/src/helper.rs"));
    assert!(hit.message.contains("indexing"));
    // Miss: the clean closure is not flagged, and the helper crate's own
    // pub fns are not entry points.
    assert!(!p002.iter().any(|d| d.symbol == "translate_checked"));
    assert!(!p002.iter().any(|d| d.symbol == "walk_table"));
}

#[test]
fn d004_and_d005_fire_in_sim_state_scope() {
    let report = analyze(&[("crates/tlb/src/stats.rs", "d004_d005_hit.rs")]);
    let d004: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D004")
        .map(|d| d.symbol.as_str())
        .collect();
    assert_eq!(d004, vec!["WalkStats::hit_rate", "WalkStats::miss_ewma"]);
    let d005 = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D005")
        .count();
    assert_eq!(d005, 3, "{:?}", report.diagnostics);

    // The same file outside sim-state scope (a bench frontend) is clean.
    let report = analyze(&[("crates/bench/src/stats.rs", "d004_d005_hit.rs")]);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.rule != "D004" && d.rule != "D005"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn r001_audit_reports_hit_and_waived() {
    let report = analyze(&[("crates/system/src/machine.rs", "r001_hit_waived.rs")]);
    let active: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R001")
        .map(|d| d.symbol.as_str())
        .collect();
    // The RefCell in the Machine closure is active; the waived Rc is
    // silenced with its reason kept; the Mutex in the unreachable type
    // is not reported.
    assert_eq!(active, vec!["TlbBank::shootdown_log"]);
    let waived: Vec<_> = report
        .waived_findings
        .iter()
        .filter(|w| w.rule == "R001")
        .collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].symbol, "TlbBank::config");
    assert!(waived[0].reason.contains("item 2"));
    assert_eq!(report.readiness.roots.len(), 1);
}

#[test]
fn sarif_output_matches_golden_and_validates() {
    let report = analyze(&[
        ("crates/system/src/entry.rs", "p002_entry.rs"),
        ("crates/mem/src/helper.rs", "p002_helper.rs"),
        ("crates/tlb/src/stats.rs", "d004_d005_hit.rs"),
    ]);
    let rendered = sarif::render(&report.diagnostics);
    sarif::validate(&rendered).expect("SARIF validates against the 2.1.0 core shape");

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sarif_golden.sarif");
    if std::env::var_os("BARRE_BLESS").is_some() {
        fs::write(&golden_path, &rendered).expect("bless golden");
    }
    let golden = fs::read_to_string(&golden_path).expect("golden readable");
    assert_eq!(
        rendered, golden,
        "SARIF output drifted from the golden; rerun with BARRE_BLESS=1 if intended"
    );
}

#[test]
fn fix_is_idempotent_on_the_fixture() {
    let src = fixture("fix_input.rs");
    let path = "crates/tlb/src/fix_input.rs";
    let diags = |s: &str| {
        let report = analyze_sources(
            &[(path.to_string(), s.to_string())],
            &AnalyzeOptions::default(),
        );
        report.diagnostics
    };

    let d1 = diags(&src);
    let d1refs: Vec<_> = d1.iter().collect();
    let (once, n) = fix::fix_source(&src, &d1refs).expect("fixes applied");
    assert!(n >= 2, "expected the W001 scaffold and the D002 rewrite");
    assert!(once.contains("TODO: justify this waiver"));
    assert!(once.contains("clock.now()"));
    assert!(!once.contains("Instant::now()"));

    // Applying the fixer to its own output changes nothing.
    let d2 = diags(&once);
    let d2refs: Vec<_> = d2.iter().collect();
    match fix::fix_source(&once, &d2refs) {
        None => {}
        Some((twice, _)) => assert_eq!(once, twice, "fix not idempotent"),
    }
}
