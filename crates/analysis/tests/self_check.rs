//! The analyzer must run clean over its own workspace: zero unwaived,
//! unbaselined violations, the inline-waiver budget respected, and every
//! baselined finding carrying a real justification. Failing this test
//! means a determinism/panic-safety regression slipped in (or a new rule
//! needs a burndown pass).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use barre_analysis::{analyze_workspace, baseline, AnalyzeOptions, LintReport};

/// The inline-waiver budget. Must match the `--max-waivers` default in
/// the CLI and the CI invocation.
const MAX_WAIVERS: usize = 5;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn analyze_with_baseline(root: &Path) -> LintReport {
    let bl_src =
        fs::read_to_string(root.join("lint-baseline.json")).expect("lint-baseline.json readable");
    let bl = baseline::parse_baseline(&bl_src).expect("lint-baseline.json parses");
    analyze_workspace(root, &AnalyzeOptions { baseline: Some(bl) }).expect("workspace walk failed")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = analyze_with_baseline(&root);
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "workspace has {} unwaived, unbaselined lint violation(s):\n{}",
        report.diagnostics.len(),
        barre_analysis::render_human(&report)
    );
    assert!(
        report.waived <= MAX_WAIVERS,
        "{} inline waivers exceed the budget of {MAX_WAIVERS} — move accepted \
         findings into lint-baseline.json",
        report.waived
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries (prune them): {:?}",
        report.stale_baseline
    );
}

#[test]
fn baseline_justifications_are_real() {
    let root = workspace_root();
    let bl_src =
        fs::read_to_string(root.join("lint-baseline.json")).expect("lint-baseline.json readable");
    let bl = baseline::parse_baseline(&bl_src).expect("lint-baseline.json parses");
    assert!(!bl.entries.is_empty(), "empty baseline is suspicious here");
    for e in &bl.entries {
        assert!(
            !e.justification.trim().is_empty() && !e.justification.trim_start().starts_with("TODO"),
            "baseline entry {} {} `{}` lacks a real justification: {:?}",
            e.rule,
            e.file,
            e.symbol,
            e.justification
        );
    }
}

#[test]
fn parallel_readiness_audit_is_green_for_sim_and_system() {
    // The R001 go/no-go artifact for ROADMAP item 2: the Machine closure
    // must carry no active interior-mutability findings, and any waived
    // ones must state why.
    let root = workspace_root();
    let report = analyze_with_baseline(&root);
    assert!(
        !report.readiness.roots.is_empty(),
        "R001 found no Machine root — parser regression?"
    );
    let active: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R001")
        .collect();
    assert!(active.is_empty(), "active R001 findings: {active:?}");
    for w in report.waived_findings.iter().filter(|w| w.rule == "R001") {
        assert!(
            !w.reason.trim().is_empty(),
            "R001 waiver without justification: {w:?}"
        );
    }
}

#[test]
fn analyzer_finishes_under_two_seconds() {
    // The analyzer runs on every CI push and locally before commits; it
    // must stay interactive. Generous 2s bound for debug builds on slow
    // runners (release is ~10x faster).
    let root = workspace_root();
    let start = Instant::now();
    let report = analyze_with_baseline(&root);
    let elapsed = start.elapsed();
    assert!(report.files_scanned > 50);
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "analyzer took {elapsed:?} over the workspace (budget: 2s)"
    );
}
