//! The linter must run clean over its own workspace: zero unwaived
//! violations. Failing this test means a determinism/panic-safety
//! regression slipped in (or a new rule needs a burndown pass).

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = barre_analysis::lint_workspace(&root).expect("workspace walk failed");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "workspace has {} unwaived lint violation(s):\n{}",
        report.diagnostics.len(),
        barre_analysis::render_human(&report)
    );
}
