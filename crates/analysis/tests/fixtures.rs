//! Runs the rule engine over the fixture corpus. Each fixture is linted
//! under a synthetic sim-facing path (`crates/tlb/src/<name>`) so every
//! rule's scope condition is satisfied; the fixtures directory itself is
//! excluded from workspace walks.

use std::fs;
use std::path::Path;

use barre_analysis::lint_source;

fn lint_fixture(name: &str) -> barre_analysis::FileLint {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).expect("fixture readable");
    lint_source(&format!("crates/tlb/src/{name}"), &src)
}

fn rules(fl: &barre_analysis::FileLint) -> Vec<&'static str> {
    fl.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn d001_positive_hits_each_collection() {
    let fl = lint_fixture("d001_hit.rs");
    assert_eq!(rules(&fl), vec!["D001"; 4], "{:?}", fl.diagnostics);
    // Diagnostics carry the offending line: the `use` on line 2.
    assert_eq!(fl.diagnostics[0].line, 2);
}

#[test]
fn d001_waived_is_silent_but_counted() {
    let fl = lint_fixture("d001_waived.rs");
    assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
    assert_eq!(fl.waived, 2);
}

#[test]
fn p001_fires_in_production_not_tests() {
    let fl = lint_fixture("p001_hit.rs");
    assert_eq!(rules(&fl), vec!["P001"; 4], "{:?}", fl.diagnostics);
}

#[test]
fn d002_and_d003_fire() {
    let fl = lint_fixture("d002_d003_hit.rs");
    let r = rules(&fl);
    assert!(r.contains(&"D002"), "{:?}", fl.diagnostics);
    assert!(r.contains(&"D003"), "{:?}", fl.diagnostics);
}

#[test]
fn c001_fires_on_narrowing_only() {
    let fl = lint_fixture("c001_hit.rs");
    assert_eq!(rules(&fl), vec!["C001"; 2], "{:?}", fl.diagnostics);
}

#[test]
fn c002_fires_on_each_unchecked_accumulation() {
    let fl = lint_fixture("c002_hit.rs");
    assert_eq!(rules(&fl), vec!["C002"; 3], "{:?}", fl.diagnostics);
}

#[test]
fn lexer_tricky_cases_never_fire() {
    let fl = lint_fixture("lexer_tricky.rs");
    assert!(fl.diagnostics.is_empty(), "{:?}", fl.diagnostics);
    assert_eq!(fl.waived, 0);
}

#[test]
fn reasonless_waiver_reports_w001_and_does_not_silence() {
    let fl = lint_fixture("w001_bad_waiver.rs");
    let r = rules(&fl);
    assert!(r.contains(&"W001"), "{:?}", fl.diagnostics);
    assert!(r.contains(&"D001"), "{:?}", fl.diagnostics);
    assert_eq!(fl.waived, 0);
}
