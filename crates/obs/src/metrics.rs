//! Prometheus text-exposition (format 0.0.4) encoding.
//!
//! The daemons do not register metrics with a global registry — their
//! counters already live in relaxed atomics and
//! [`barre_trace::LatencyHistogram`]s. A `/metrics` scrape builds a
//! [`PromText`], appends each family in a fixed order, and ships the
//! rendered string, so the exposition is a pure snapshot function of
//! the counters: no extra synchronization, nothing on the hot path.
//!
//! Encoding rules implemented here (the subset the fleet needs):
//!
//! * every family gets `# HELP` and `# TYPE` lines, help text escaped
//!   (`\\` and `\n`);
//! * label values are escaped (`\\`, `\"`, `\n`);
//! * histograms emit cumulative `le` buckets ending in `+Inf`, plus
//!   `_sum` and `_count`, derived from the fixed HDR bucket layout
//!   ([`barre_trace::bucket_upper`]) so the bucket boundaries are
//!   byte-stable across runs and hosts.

use barre_trace::hist::{bucket_upper, BUCKETS};
use barre_trace::LatencyHistogram;

/// Escapes a `# HELP` text: backslashes and newlines.
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label value: backslashes, double quotes, and newlines.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A Prometheus text-format document under construction. Append
/// families with [`counter`](PromText::counter) and friends, then
/// [`render`](PromText::render) the final body.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&escape_help(help));
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Appends an unlabeled counter family with one sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], &value.to_string());
    }

    /// Appends a counter family with one labeled sample.
    pub fn counter_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.sample(name, labels, &value.to_string());
    }

    /// Appends an unlabeled gauge family with one sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], &value.to_string());
    }

    /// Appends a 0/1 gauge for a boolean condition.
    pub fn gauge_bool(&mut self, name: &str, help: &str, value: bool) {
        self.gauge(name, help, u64::from(value));
    }

    /// Appends a histogram family from a fixed-bucket
    /// [`LatencyHistogram`]: cumulative `le` buckets over the nonempty
    /// HDR buckets, a final `+Inf` bucket, `_sum`, and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &LatencyHistogram) {
        self.header(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        for (i, c) in h.nonempty() {
            cum = cum.saturating_add(c);
            // The last HDR bucket's upper bound is u64::MAX; that count
            // belongs to the +Inf bucket below.
            if i + 1 < BUCKETS {
                let le = bucket_upper(i).to_string();
                self.sample(&bucket, &[("le", &le)], &cum.to_string());
            }
        }
        self.sample(&bucket, &[("le", "+Inf")], &h.count().to_string());
        self.sample(&format!("{name}_sum"), &[], &h.sum().to_string());
        self.sample(&format!("{name}_count"), &[], &h.count().to_string());
    }

    /// The finished exposition body.
    pub fn render(self) -> String {
        self.out
    }
}

/// The `Content-Type` a `/metrics` response must carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_exposition_format() {
        let mut p = PromText::new();
        p.counter("barre_test_total", "Things counted.", 3);
        p.gauge("barre_test_depth", "Current depth.", 7);
        p.gauge_bool("barre_test_draining", "Whether draining.", false);
        assert_eq!(
            p.render(),
            "# HELP barre_test_total Things counted.\n\
             # TYPE barre_test_total counter\n\
             barre_test_total 3\n\
             # HELP barre_test_depth Current depth.\n\
             # TYPE barre_test_depth gauge\n\
             barre_test_depth 7\n\
             # HELP barre_test_draining Whether draining.\n\
             # TYPE barre_test_draining gauge\n\
             barre_test_draining 0\n"
        );
    }

    #[test]
    fn help_and_label_escaping() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label("say \"hi\"\\now"), "say \\\"hi\\\"\\\\now");
        let mut p = PromText::new();
        p.counter_labeled(
            "barre_test_total",
            "Multi\nline help",
            &[("worker", "w\"1\"")],
            1,
        );
        let body = p.render();
        assert!(body.contains("# HELP barre_test_total Multi\\nline help\n"));
        assert!(body.contains("barre_test_total{worker=\"w\\\"1\\\"\"} 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 1, 5, 100, 100, 100, 5_000] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("barre_test_ms", "Latency.", &h);
        let body = p.render();
        let mut last = 0u64;
        let mut bucket_lines = 0usize;
        for line in body.lines() {
            let Some(rest) = line.strip_prefix("barre_test_ms_bucket{le=\"") else {
                continue;
            };
            bucket_lines += 1;
            let (le, count) = rest.split_once("\"} ").expect("bucket line shape");
            let count: u64 = count.parse().expect("bucket count");
            assert!(count >= last, "buckets must be cumulative: {line}");
            last = count;
            if le == "+Inf" {
                assert_eq!(count, h.count());
            }
        }
        assert_eq!(bucket_lines, 5, "{body}");
        assert!(body.contains(&format!("barre_test_ms_sum {}\n", h.sum())));
        assert!(body.contains(&format!("barre_test_ms_count {}\n", h.count())));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_sum_count() {
        let mut p = PromText::new();
        p.histogram("barre_empty_ms", "Nothing yet.", &LatencyHistogram::new());
        let body = p.render();
        assert!(body.contains("barre_empty_ms_bucket{le=\"+Inf\"} 0\n"));
        assert!(body.contains("barre_empty_ms_sum 0\n"));
        assert!(body.contains("barre_empty_ms_count 0\n"));
    }

    #[test]
    fn max_value_samples_land_in_inf_only() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(3);
        let mut p = PromText::new();
        p.histogram("barre_edge_ms", "Edge.", &h);
        let body = p.render();
        // The u64::MAX sample must not produce a finite le bound.
        assert!(!body.contains(&format!("le=\"{}\"", u64::MAX)));
        assert!(body.contains("barre_edge_ms_bucket{le=\"3\"} 1\n"));
        assert!(body.contains("barre_edge_ms_bucket{le=\"+Inf\"} 2\n"));
    }
}
