//! Leveled structured logging as JSONL.
//!
//! One line per event, stable field order:
//!
//! ```text
//! {"ts_ms":1723111845123,"level":"info","component":"queue","event":"restored","jobs":27,"msg":"queue: restored 27 job(s) ..."}
//! ```
//!
//! * `ts_ms` — wall-clock milliseconds since the Unix epoch;
//! * `level`, `component`, `event` — fixed taxonomy fields;
//! * caller-supplied fields (job fingerprints, labels, counts) in the
//!   caller's order;
//! * `msg` — the human-readable message, verbatim, always last.
//!
//! The threshold comes from `BARRE_LOG` (`error`, `warn`, `info`,
//! `debug`, `trace`, `off`; default `info`) and the sink is stderr
//! unless [`set_log_file`] (the daemons' `--log-file` flag) points it at
//! a file. Logging is best-effort: sink errors are swallowed, nothing
//! here panics, and nothing here is called from simulation code.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Environment variable controlling the log threshold.
pub const LOG_ENV: &str = "BARRE_LOG";

/// Severity levels, most to least severe. `Off` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or operator-visible faults.
    Error = 1,
    /// Degraded but self-healing conditions (lost leases, retries).
    Warn = 2,
    /// Lifecycle events (startup, drain, per-job terminal states).
    Info = 3,
    /// Per-request detail (streaming trace summaries).
    Debug = 4,
    /// Everything, including heartbeats.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `BARRE_LOG` value; `None` for unknown spellings (which
    /// fall back to the default threshold) and `Some(None)`-like `off`
    /// is mapped to threshold 0 by the caller.
    fn parse(s: &str) -> Option<u8> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(0),
            "error" => Some(Level::Error as u8),
            "warn" | "warning" => Some(Level::Warn as u8),
            "info" => Some(Level::Info as u8),
            "debug" => Some(Level::Debug as u8),
            "trace" => Some(Level::Trace as u8),
            _ => None,
        }
    }
}

/// Threshold not yet resolved from the environment.
const UNINIT: u8 = u8::MAX;

static THRESHOLD: AtomicU8 = AtomicU8::new(UNINIT);
static SINK: Mutex<Option<File>> = Mutex::new(None);

fn threshold() -> u8 {
    let t = THRESHOLD.load(Ordering::Relaxed);
    if t != UNINIT {
        return t;
    }
    let resolved = std::env::var(LOG_ENV)
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info as u8);
    THRESHOLD.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the threshold (tests; daemons normally use `BARRE_LOG`).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Whether events at `level` currently reach the sink.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= threshold()
}

/// Redirects the sink from stderr to an append-mode file (`--log-file`).
///
/// # Errors
///
/// A human-readable message when the file cannot be opened.
pub fn set_log_file(path: &Path) -> Result<(), String> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open log file {}: {e}", path.display()))?;
    *SINK.lock().unwrap_or_else(PoisonError::into_inner) = Some(file);
    Ok(())
}

/// A structured field value; renders as native JSON.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// A string value (JSON-escaped).
    S(&'a str),
    /// An unsigned integer.
    U(u64),
    /// A signed integer.
    I(i64),
    /// A boolean.
    B(bool),
}

/// Appends `s` JSON-escaped (quotes, backslashes, control characters).
pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_field(out: &mut String, key: &str, value: &Field<'_>) {
    out.push('"');
    push_json_escaped(out, key);
    out.push_str("\":");
    match value {
        Field::S(s) => {
            out.push('"');
            push_json_escaped(out, s);
            out.push('"');
        }
        Field::U(v) => out.push_str(&v.to_string()),
        Field::I(v) => out.push_str(&v.to_string()),
        Field::B(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
pub(crate) fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Renders one log line (no trailing newline) — the pure core of
/// [`log`], separated so tests can pin the exact format.
pub fn render_line(
    ts_ms: u64,
    level: Level,
    component: &str,
    event: &str,
    fields: &[(&str, Field<'_>)],
    msg: &str,
) -> String {
    let mut out = String::with_capacity(96 + msg.len());
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.as_str());
    out.push_str("\",\"component\":\"");
    push_json_escaped(&mut out, component);
    out.push_str("\",\"event\":\"");
    push_json_escaped(&mut out, event);
    out.push('"');
    for (k, v) in fields {
        out.push(',');
        push_field(&mut out, k, v);
    }
    out.push_str(",\"msg\":\"");
    push_json_escaped(&mut out, msg);
    out.push_str("\"}");
    out
}

fn emit(line: &str) {
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(file) = sink.as_mut() {
        let _ = writeln!(file, "{line}");
        return;
    }
    drop(sink);
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Emits one structured event when `level` clears the threshold.
pub fn log(level: Level, component: &str, event: &str, fields: &[(&str, Field<'_>)], msg: &str) {
    if !enabled(level) {
        return;
    }
    emit(&render_line(now_ms(), level, component, event, fields, msg));
}

/// [`log`] at [`Level::Error`].
pub fn error(component: &str, event: &str, fields: &[(&str, Field<'_>)], msg: &str) {
    log(Level::Error, component, event, fields, msg);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(component: &str, event: &str, fields: &[(&str, Field<'_>)], msg: &str) {
    log(Level::Warn, component, event, fields, msg);
}

/// [`log`] at [`Level::Info`].
pub fn info(component: &str, event: &str, fields: &[(&str, Field<'_>)], msg: &str) {
    log(Level::Info, component, event, fields, msg);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(component: &str, event: &str, fields: &[(&str, Field<'_>)], msg: &str) {
    log(Level::Debug, component, event, fields, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_format_is_stable() {
        let line = render_line(
            42,
            Level::Info,
            "queue",
            "restored",
            &[("jobs", Field::U(27)), ("journal", Field::S("q/x.jsonl"))],
            "queue: restored 27 job(s)",
        );
        assert_eq!(
            line,
            "{\"ts_ms\":42,\"level\":\"info\",\"component\":\"queue\",\
             \"event\":\"restored\",\"jobs\":27,\"journal\":\"q/x.jsonl\",\
             \"msg\":\"queue: restored 27 job(s)\"}"
        );
    }

    #[test]
    fn messages_are_json_escaped() {
        let line = render_line(
            0,
            Level::Error,
            "serve",
            "fail",
            &[("why", Field::S("a\"b\\c\nd"))],
            "tab\there",
        );
        assert!(line.contains("\"why\":\"a\\\"b\\\\c\\nd\""), "{line}");
        assert!(line.contains("\"msg\":\"tab\\there\""), "{line}");
    }

    #[test]
    fn field_kinds_render_as_native_json() {
        let line = render_line(
            1,
            Level::Warn,
            "w",
            "e",
            &[
                ("u", Field::U(7)),
                ("i", Field::I(-3)),
                ("b", Field::B(true)),
            ],
            "",
        );
        assert!(line.contains("\"u\":7,\"i\":-3,\"b\":true"), "{line}");
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("info"), Some(3));
        assert_eq!(Level::parse("WARN"), Some(2));
        assert_eq!(Level::parse("off"), Some(0));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
    }
}
