//! The fleet observability plane: metrics, logs, and cross-process
//! traces for the `barre` daemons.
//!
//! Three pillars, all zero-dependency and none of them allowed anywhere
//! near the simulation hot path:
//!
//! * [`metrics`] — a Prometheus text-exposition (format 0.0.4) encoder.
//!   The daemons keep their counters wherever they already live (relaxed
//!   atomics, [`barre_trace::LatencyHistogram`]s); at `GET /metrics`
//!   scrape time they render a snapshot through [`metrics::PromText`],
//!   so a stock Prometheus scraper works against a barre fleet.
//! * [`log`] — a leveled JSONL logger with a stable field order,
//!   `BARRE_LOG=<level>` control, and a stderr or `--log-file` sink.
//!   Replaces the daemons' ad-hoc `eprintln!` sites so fleet logs are
//!   grep/jq-able and machine-mergeable; the human-readable message is
//!   preserved verbatim in the `msg` field.
//! * [`fleet`] — per-process span-event JSONL written when
//!   `BARRE_FLEET_TRACE=<dir>` is set, plus the correlation-id plumbing
//!   (`BARRE_CORR_ID`) that lets `barre report --fleet` stitch a
//!   dispatch client, a queue coordinator, and N workers into one
//!   Perfetto timeline.
//!
//! Everything here is best-effort by design: a full disk, a closed
//! stderr, or a poisoned sink mutex degrades observability, never the
//! work being observed. No function in this crate panics.

pub mod fleet;
pub mod log;
pub mod metrics;

pub use fleet::{corr_id, FleetTracer, CORR_ENV, FLEET_TRACE_ENV};
pub use log::{Field, Level};
pub use metrics::PromText;
