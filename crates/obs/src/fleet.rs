//! Cross-process fleet tracing: per-process span-event JSONL plus the
//! correlation-id plumbing that stitches a distributed sweep together.
//!
//! When `BARRE_FLEET_TRACE=<dir>` is set, each fleet process (dispatch
//! client, queue coordinator, worker, serve daemon) appends point
//! events to its own `<dir>/fleet-<role>-<pid>.trace.jsonl`:
//!
//! ```text
//! {"ts_ms":1723111845123,"role":"worker","pid":4242,"event":"attempt_start","corr":"c9f2...","fp":"ab12...","label":"gups/barre"}
//! ```
//!
//! A correlation id minted by the dispatch client ([`corr_id`]) rides
//! the wire protocol to the coordinator, comes back with each lease,
//! and reaches the simulating child through the `BARRE_CORR_ID`
//! environment variable — never through any journal, so every
//! byte-identity contract on journals and stdout is untouched.
//! `barre report --fleet <dirs…>` groups the events by job fingerprint
//! and renders one Perfetto timeline from them.
//!
//! Like the rest of this crate, tracing is best-effort: an unwritable
//! directory silently disables it.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::log::{now_ms, push_field, push_json_escaped, Field};

/// Environment variable naming the fleet-trace output directory.
pub const FLEET_TRACE_ENV: &str = "BARRE_FLEET_TRACE";

/// Environment variable carrying a job's correlation id into the
/// simulating child process.
pub const CORR_ENV: &str = "BARRE_CORR_ID";

/// Per-invocation counter folded into [`corr_id`] so ids minted in the
/// same nanosecond stay distinct.
static CORR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Mints a correlation id: `c` + 16 hex digits, FNV-1a over the pid,
/// the wall clock, and a process-local counter. Not cryptographic —
/// just unique enough to join trace events across a fleet.
pub fn corr_id() -> String {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let seq = CORR_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(&std::process::id().to_le_bytes());
    fold(&nanos.to_le_bytes());
    fold(&seq.to_le_bytes());
    format!("c{h:016x}")
}

/// A handle appending span events to this process's fleet-trace file.
#[derive(Debug)]
pub struct FleetTracer {
    role: String,
    pid: u32,
    file: Mutex<File>,
}

impl FleetTracer {
    /// Opens the tracer for `role` when `BARRE_FLEET_TRACE` names a
    /// directory; `None` (tracing disabled) otherwise, or when the
    /// directory cannot be created or the file cannot be opened.
    pub fn from_env(role: &str) -> Option<FleetTracer> {
        let dir = std::env::var(FLEET_TRACE_ENV)
            .ok()
            .filter(|d| !d.is_empty())?;
        Self::open(Path::new(&dir), role)
    }

    /// Opens the tracer writing under `dir` (used directly by tests).
    pub fn open(dir: &Path, role: &str) -> Option<FleetTracer> {
        std::fs::create_dir_all(dir).ok()?;
        let pid = std::process::id();
        let path = dir.join(format!("fleet-{role}-{pid}.trace.jsonl"));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()?;
        Some(FleetTracer {
            role: role.to_string(),
            pid,
            file: Mutex::new(file),
        })
    }

    /// Appends one point event. `corr` may be empty when the id is not
    /// known at this point (e.g. a lease for a job submitted without
    /// one); the stitcher falls back to joining on `fp`.
    pub fn event(&self, event: &str, corr: &str, fields: &[(&str, Field<'_>)]) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"ts_ms\":");
        line.push_str(&now_ms().to_string());
        line.push_str(",\"role\":\"");
        push_json_escaped(&mut line, &self.role);
        line.push_str("\",\"pid\":");
        line.push_str(&self.pid.to_string());
        line.push_str(",\"event\":\"");
        push_json_escaped(&mut line, event);
        line.push('"');
        if !corr.is_empty() {
            line.push(',');
            push_field(&mut line, "corr", &Field::S(corr));
        }
        for (k, v) in fields {
            line.push(',');
            push_field(&mut line, k, v);
        }
        line.push('}');
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(file, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_ids_are_distinct_and_well_formed() {
        let a = corr_id();
        let b = corr_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 17, "{id}");
            assert!(id.starts_with('c'), "{id}");
            assert!(id[1..].chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        }
    }

    #[test]
    fn events_append_as_jsonl() {
        let dir = std::env::temp_dir().join(format!("barre-fleet-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = FleetTracer::open(&dir, "worker").expect("open tracer");
        t.event(
            "attempt_start",
            "c0123456789abcdef",
            &[("fp", Field::S("ab12")), ("label", Field::S("gups/barre"))],
        );
        t.event("attempt_end", "", &[("fp", Field::S("ab12"))]);
        let path = dir.join(format!("fleet-worker-{}.trace.jsonl", std::process::id()));
        let body = std::fs::read_to_string(path).expect("read trace");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "{body}");
        assert!(
            lines[0].contains("\"event\":\"attempt_start\"")
                && lines[0].contains("\"corr\":\"c0123456789abcdef\"")
                && lines[0].contains("\"label\":\"gups/barre\""),
            "{}",
            lines[0]
        );
        // An empty corr id is omitted entirely, not rendered as "".
        assert!(!lines[1].contains("corr"), "{}", lines[1]);
    }
}
