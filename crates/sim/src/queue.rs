//! The central event queue.
//!
//! A bucketed calendar queue keyed by `(cycle, sequence)`. The sequence
//! number breaks ties between events scheduled for the same cycle in
//! insertion order, which keeps the whole simulation deterministic
//! regardless of the queue's internal layout.
//!
//! # Why a calendar queue
//!
//! The previous implementation was a `BinaryHeap`; every push/pop paid
//! `O(log n)` pointer-chasing sift costs on the hottest loop in the
//! simulator. Almost every event the machine schedules lands a small,
//! bounded number of cycles in the future (TLB latencies, link
//! serialization, MSHR retries), so a calendar queue — a ring of
//! per-cycle buckets — turns the common case into an append at the tail
//! of a short, cache-resident `VecDeque` and a `pop_front`.
//!
//! Layout:
//!
//! * `buckets[c & mask]` holds every scheduled event whose cycle is
//!   within the wheel horizon, sorted by `(cycle, seq)`. Distinct cycles
//!   in one bucket differ by multiples of the wheel size, so the sort
//!   degenerates to "append at the back" for in-horizon pushes.
//! * Events beyond the horizon wait in a small overflow min-heap and are
//!   re-binned into the wheel as the cursor approaches them.
//! * `pop` advances a cycle cursor; after a full fruitless revolution it
//!   jumps straight to the global minimum (sparse endgames), so a long
//!   empty stretch costs one wheel scan instead of a per-cycle walk.
//!
//! Pop order is byte-identical to the old heap: strictly nondecreasing
//! `(cycle, seq)`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Default number of wheel buckets. Power of two; covers every
/// small-latency event the machine model schedules (TLB/link/DRAM/retry
/// delays are all well under this many cycles).
const DEFAULT_BUCKETS: usize = 4096;

/// Upper bound on adaptive wheel growth. 65536 buckets ≈ 2 MiB of empty
/// `VecDeque` headers — past that, the O(buckets) sparse-jump scan and
/// memory cost outweigh saving heap hops for truly far-future events.
const MAX_BUCKETS: usize = 1 << 16;

/// Overflow-heap population that triggers a wheel resize. Growth is only
/// worth a rebuild when the heap is taking sustained traffic, not for a
/// handful of stragglers.
const GROW_PRESSURE: usize = 64;

/// A deterministic min-queue of timestamped events.
///
/// Events popped in nondecreasing cycle order; events pushed for the same
/// cycle come out in the order they were pushed (FIFO tie-breaking).
///
/// # Example
///
/// ```
/// use barre_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(3, "b");
/// q.push(3, "c");
/// q.push(1, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![(1, "a"), (3, "b"), (3, "c")]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The wheel: bucket `i` holds events with `at & mask == i`, sorted
    /// by `(at, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: u64,
    /// Events at or beyond the wheel horizon (`cur + buckets.len()`).
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Next cycle the pop scan inspects (≤ every pending event's cycle).
    cur: Cycle,
    /// Pending events across wheel and overflow.
    len: usize,
    seq: u64,
    popped: u64,
    /// Pushes that bypassed the wheel into the overflow heap.
    spills: u64,
    /// Overflow events re-binned into the wheel as the cursor advanced.
    rebins: u64,
    /// Adaptive wheel resizes performed.
    growths: u64,
    /// Largest `at - cur` gap observed at push time — the workload's
    /// observed event horizon, which adaptive growth sizes the wheel to.
    max_gap: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default wheel size.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates an empty queue sized for roughly `pending_hint`
    /// simultaneously scheduled events (a workload-derived capacity
    /// hint). The wheel size still bounds per-bucket occupancy; the hint
    /// pre-reserves bucket storage so the warm-up phase does not grow
    /// every `VecDeque` one push at a time.
    pub fn with_capacity(pending_hint: usize) -> Self {
        let mut q = Self::with_buckets(DEFAULT_BUCKETS);
        let per_bucket = pending_hint / DEFAULT_BUCKETS;
        if per_bucket > 0 {
            for b in &mut q.buckets {
                b.reserve(per_bucket);
            }
        }
        q
    }

    fn with_buckets(n: usize) -> Self {
        let n = n.next_power_of_two().max(2);
        Self {
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            mask: (n - 1) as u64,
            overflow: BinaryHeap::new(),
            cur: 0,
            len: 0,
            seq: 0,
            popped: 0,
            spills: 0,
            rebins: 0,
            growths: 0,
            max_gap: 0,
        }
    }

    /// Cycle at or beyond which a push bypasses the wheel.
    fn horizon(&self) -> Cycle {
        self.cur.saturating_add(self.buckets.len() as u64)
    }

    /// Schedules `ev` to fire at absolute cycle `at`.
    pub fn push(&mut self, at: Cycle, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        // Pushing into the past is legal for a generic queue: rewind the
        // scan cursor so the event is still found (the simulator itself
        // only ever schedules at or after `now`).
        if at < self.cur {
            self.cur = at;
        }
        let e = Entry { at, seq, ev };
        if at >= self.horizon() {
            self.spills += 1;
            self.max_gap = self.max_gap.max(at - self.cur);
            self.overflow.push(Reverse(e));
            self.len += 1;
            // Adaptive sizing: sustained overflow pressure means the
            // wheel is too small for this workload's event horizon —
            // grow it toward the largest gap seen (capped), so future
            // pushes at that distance bin in O(1) instead of heaping.
            if self.overflow.len() >= GROW_PRESSURE && self.buckets.len() < MAX_BUCKETS {
                self.grow_wheel();
            }
        } else {
            Self::bin(&mut self.buckets, self.mask, e);
            self.len += 1;
        }
    }

    /// Rebuilds the wheel at a larger size chosen from the observed event
    /// horizon. Every entry keeps its `(at, seq)` key and every bucket
    /// stays sorted, so pop order is unaffected — only the bucket an
    /// event lives in changes.
    fn grow_wheel(&mut self) {
        let target = usize::try_from(self.max_gap.saturating_add(1))
            .unwrap_or(MAX_BUCKETS)
            .next_power_of_two()
            .clamp(self.buckets.len().saturating_mul(2), MAX_BUCKETS);
        if target <= self.buckets.len() {
            return;
        }
        let old = std::mem::replace(
            &mut self.buckets,
            (0..target).map(|_| VecDeque::new()).collect(),
        );
        self.mask = (target - 1) as u64;
        for b in old {
            for e in b {
                // Everything on the old wheel was inside the old horizon,
                // which the new, larger horizon contains.
                Self::bin(&mut self.buckets, self.mask, e);
            }
        }
        self.drain_overflow();
        self.growths += 1;
    }

    /// Inserts `e` into its wheel bucket, keeping the bucket sorted by
    /// `(at, seq)`. The common case — the newest event of the bucket's
    /// latest cycle — is an O(1) append.
    fn bin(buckets: &mut [VecDeque<Entry<E>>], mask: u64, e: Entry<E>) {
        let b = &mut buckets[(e.at & mask) as usize];
        match b.back() {
            Some(back) if (back.at, back.seq) > (e.at, e.seq) => {
                let pos = b.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
                b.insert(pos, e);
            }
            _ => b.push_back(e),
        }
    }

    /// Moves overflow events that fell inside the wheel horizon into
    /// their buckets.
    fn drain_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(Reverse(front)) = self.overflow.peek() {
            if front.at >= horizon {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else {
                break;
            };
            self.rebins += 1;
            Self::bin(&mut self.buckets, self.mask, e);
        }
    }

    /// Smallest pending cycle across wheel and overflow; `None` when
    /// empty. O(bucket count) — used by the sparse-jump path and
    /// [`peek_cycle`](Self::peek_cycle), never by the dense fast path.
    fn min_pending_cycle(&self) -> Option<Cycle> {
        let wheel_min = self.buckets.iter().filter_map(|b| b.front().map(|e| e.at));
        let over_min = self.overflow.peek().map(|Reverse(e)| e.at);
        wheel_min.chain(over_min).min()
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        self.drain_overflow();
        let mut scanned = 0usize;
        loop {
            // Anything the cursor is about to inspect must be on the
            // wheel, including overflow events whose cycle the cursor
            // just reached (cheap peek, usually one comparison).
            while let Some(Reverse(front)) = self.overflow.peek() {
                if front.at > self.cur {
                    break;
                }
                let Some(Reverse(e)) = self.overflow.pop() else {
                    break;
                };
                self.rebins += 1;
                Self::bin(&mut self.buckets, self.mask, e);
            }
            let b = (self.cur & self.mask) as usize;
            if let Some(front) = self.buckets[b].front() {
                if front.at == self.cur {
                    let Some(e) = self.buckets[b].pop_front() else {
                        break None;
                    };
                    self.len -= 1;
                    self.popped += 1;
                    break Some((e.at, e.ev));
                }
            }
            self.cur += 1;
            scanned += 1;
            if scanned >= self.buckets.len() {
                // A full fruitless revolution: the next event is far
                // away. Jump straight to the global minimum instead of
                // walking every intermediate cycle.
                let Some(min) = self.min_pending_cycle() else {
                    break None;
                };
                self.cur = min;
                self.drain_overflow();
                scanned = 0;
            }
        }
    }

    /// Cycle of the earliest pending event, without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.min_pending_cycle()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Pushes that landed beyond the wheel horizon and took the overflow
    /// heap instead of an O(1) bucket append.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Overflow events migrated back onto the wheel as the cursor
    /// approached them.
    pub fn rebins(&self) -> u64 {
        self.rebins
    }

    /// Adaptive wheel resizes performed so far.
    pub fn growths(&self) -> u64 {
        self.growths
    }

    /// Current wheel size in buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "c");
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
    }

    #[test]
    fn tracks_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(1));
        q.pop();
        assert_eq!(q.processed(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Events beyond the wheel ride the overflow heap and re-bin as
        // the cursor approaches; order must be unaffected.
        let mut q = EventQueue::new();
        q.push(1_000_000, "far");
        q.push(3, "near");
        q.push(2_000_000_000, "very far");
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((1_000_000, "far")));
        assert_eq!(q.pop(), Some((2_000_000_000, "very far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_aliasing_keeps_cycle_order() {
        // Cycles that share a bucket (differ by the wheel size) must
        // still come out in cycle order, whatever the push order.
        let n = 4096u64;
        let mut q = EventQueue::new();
        q.push(5 + 2 * n, "c");
        q.push(5, "a");
        q.push(5 + n, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5 + n, "b")));
        assert_eq!(q.pop(), Some((5 + 2 * n, "c")));
    }

    #[test]
    fn push_into_the_past_is_found() {
        let mut q = EventQueue::new();
        q.push(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        q.push(40, "past");
        q.push(120, "future");
        assert_eq!(q.pop(), Some((40, "past")));
        assert_eq!(q.pop(), Some((120, "future")));
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::with_capacity(100_000);
        let mut b = EventQueue::new();
        for i in 0..1000u64 {
            a.push(i % 37, i);
            b.push(i % 37, i);
        }
        for _ in 0..1000 {
            assert_eq!(a.pop(), b.pop());
        }
    }

    /// Reference model: a stable sort over `(cycle, push order)`.
    fn reference_order(pushes: &[(Cycle, u64)]) -> Vec<(Cycle, u64)> {
        let mut v: Vec<(Cycle, u64)> = pushes.to_vec();
        v.sort_by_key(|&(at, i)| (at, i));
        v
    }

    #[test]
    fn property_matches_reference_model_on_random_schedules() {
        // Seeded random schedules spanning buckets, aliased cycles, and
        // far-overflow delays; pop order must equal the reference
        // stable sort for every seed.
        for seed in 0..8u64 {
            let mut rng = Rng::new(0xCA1E_0000 ^ seed);
            let mut q = EventQueue::new();
            let mut pushes: Vec<(Cycle, u64)> = Vec::new();
            for i in 0..2000u64 {
                // Mix of near, aliased, and far-future delays.
                let at = match rng.next_u64() % 10 {
                    0..=5 => rng.next_u64() % 512,
                    6..=7 => 4096 * (1 + rng.next_u64() % 3) + rng.next_u64() % 8,
                    8 => 100_000 + rng.next_u64() % 1000,
                    _ => 10_000_000 + rng.next_u64() % 100,
                };
                q.push(at, i);
                pushes.push((at, i));
            }
            let expect = reference_order(&pushes);
            for (at, i) in expect {
                assert_eq!(q.pop(), Some((at, i)), "seed {seed} diverged");
            }
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn adaptive_growth_fires_under_overflow_pressure() {
        let mut q = EventQueue::new();
        let before = q.buckets();
        // Sustained far-future pushes (gap ~16k) overwhelm the 4096-cycle
        // horizon; the wheel must grow and later pushes at that distance
        // must bin without spilling.
        for i in 0..200u64 {
            q.push(16_000 + i, i);
        }
        assert!(q.growths() > 0, "no adaptive resize happened");
        assert!(q.buckets() > before);
        assert!(q.buckets() <= MAX_BUCKETS);
        assert!(q.spills() >= GROW_PRESSURE as u64);
        let spills_after_growth = q.spills();
        for i in 0..100u64 {
            q.push(10_000 + i, 1000 + i);
        }
        assert_eq!(q.spills(), spills_after_growth, "grown wheel still spilled");
        // Order is untouched by the rebuild.
        let mut last = (0, 0);
        while let Some((at, v)) = q.pop() {
            assert!((at, v) >= last);
            last = (at, v);
        }
    }

    #[test]
    fn property_adaptive_sizing_preserves_cycle_seq_fifo_order() {
        // The satellite property: whatever resizes the wheel performs
        // mid-run, pop order must equal the (cycle, push-seq) stable sort
        // — including FIFO ties — across schedules engineered to trigger
        // growth at different moments.
        for seed in 0..12u64 {
            let mut rng = Rng::new(0xADA9_7100 ^ seed);
            let mut q = EventQueue::new();
            let mut model: Vec<(Cycle, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for round in 0..600u64 {
                // Burst far-future pushes occasionally so the overflow
                // heap crosses GROW_PRESSURE and the wheel grows while
                // ordinary near events are in flight.
                let burst = if round % 7 == 0 { 24 } else { 2 };
                for _ in 0..burst {
                    let at = now
                        + match rng.next_u64() % 10 {
                            0..=5 => rng.next_u64() % 256,
                            6..=7 => 4096 + rng.next_u64() % 4096,
                            8 => 20_000 + rng.next_u64() % 30_000,
                            _ => 80_000 + rng.next_u64() % 100,
                        };
                    // Duplicate cycles on purpose: FIFO ties are the point.
                    q.push(at, seq);
                    model.push((at, seq));
                    seq += 1;
                }
                for _ in 0..2 {
                    model.sort_by_key(|&(at, s)| (at, s));
                    let expect = (!model.is_empty()).then(|| model.remove(0));
                    let got = q.pop();
                    assert_eq!(got, expect, "seed {seed} round {round} diverged");
                    if let Some((at, _)) = got {
                        now = at;
                    }
                }
            }
            // Drain: the tail must match too.
            model.sort_by_key(|&(at, s)| (at, s));
            for &(at, s) in &model {
                assert_eq!(q.pop(), Some((at, s)), "seed {seed} tail diverged");
            }
            assert_eq!(q.pop(), None);
            assert!(
                q.growths() > 0,
                "seed {seed} never grew — test lost its bite"
            );
        }
    }

    #[test]
    fn spill_and_rebin_counters_track() {
        let mut q = EventQueue::new();
        q.push(3, "near");
        assert_eq!(q.spills(), 0);
        q.push(1_000_000, "far");
        assert_eq!(q.spills(), 1);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((1_000_000, "far")));
        assert_eq!(q.rebins(), 1, "far event should have re-binned once");
    }

    #[test]
    fn property_interleaved_pushes_respect_running_clock() {
        // Simulator-shaped usage: every push is at or after the cycle of
        // the last popped event. Compare against an incremental
        // reference model (a vec re-sorted by (cycle, seq) per pop).
        let mut rng = Rng::new(0xBEEF);
        let mut q = EventQueue::new();
        let mut model: Vec<(Cycle, u64)> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..200 {
            let at = rng.next_u64() % 64;
            q.push(at, seq);
            model.push((at, seq));
            seq += 1;
        }
        for _ in 0..5000 {
            model.sort_by_key(|&(at, s)| (at, s));
            let expect = (!model.is_empty()).then(|| model.remove(0));
            let got = q.pop();
            assert_eq!(got, expect);
            let Some((now, _)) = got else { break };
            // Push 0–2 new events at or after the running clock.
            for _ in 0..(rng.next_u64() % 3) {
                let delay = match rng.next_u64() % 8 {
                    0..=5 => rng.next_u64() % 300,
                    6 => 5000 + rng.next_u64() % 5000,
                    _ => 50_000 + rng.next_u64() % 10_000,
                };
                q.push(now + delay, seq);
                model.push((now + delay, seq));
                seq += 1;
            }
        }
    }
}
