//! The central event queue.
//!
//! A binary heap keyed by `(cycle, sequence)`. The sequence number breaks
//! ties between events scheduled for the same cycle in insertion order,
//! which keeps the whole simulation deterministic regardless of heap
//! internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A deterministic min-heap of timestamped events.
///
/// Events popped in nondecreasing cycle order; events pushed for the same
/// cycle come out in the order they were pushed (FIFO tie-breaking).
///
/// # Example
///
/// ```
/// use barre_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(3, "b");
/// q.push(3, "c");
/// q.push(1, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![(1, "a"), (3, "b"), (3, "c")]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `ev` to fire at absolute cycle `at`.
    pub fn push(&mut self, at: Cycle, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.popped += 1;
        Some((e.at, e.ev))
    }

    /// Cycle of the earliest pending event, without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "c");
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
    }

    #[test]
    fn tracks_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(1));
        q.pop();
        assert_eq!(q.processed(), 1);
        assert_eq!(q.len(), 1);
    }
}
