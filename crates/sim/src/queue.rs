//! The central event queue.
//!
//! A bucketed calendar queue keyed by `(cycle, sequence)`. The sequence
//! number breaks ties between events scheduled for the same cycle in
//! insertion order, which keeps the whole simulation deterministic
//! regardless of the queue's internal layout.
//!
//! # Why a calendar queue
//!
//! The previous implementation was a `BinaryHeap`; every push/pop paid
//! `O(log n)` pointer-chasing sift costs on the hottest loop in the
//! simulator. Almost every event the machine schedules lands a small,
//! bounded number of cycles in the future (TLB latencies, link
//! serialization, MSHR retries), so a calendar queue — a ring of
//! per-cycle buckets — turns the common case into an append at the tail
//! of a short, cache-resident `VecDeque` and a `pop_front`.
//!
//! Layout:
//!
//! * `buckets[c & mask]` holds every scheduled event whose cycle is
//!   within the wheel horizon, sorted by `(cycle, seq)`. Distinct cycles
//!   in one bucket differ by multiples of the wheel size, so the sort
//!   degenerates to "append at the back" for in-horizon pushes.
//! * Events beyond the horizon wait in a small overflow min-heap and are
//!   re-binned into the wheel as the cursor approaches them.
//! * `pop` advances a cycle cursor; after a full fruitless revolution it
//!   jumps straight to the global minimum (sparse endgames), so a long
//!   empty stretch costs one wheel scan instead of a per-cycle walk.
//!
//! Pop order is byte-identical to the old heap: strictly nondecreasing
//! `(cycle, seq)`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Default number of wheel buckets. Power of two; covers every
/// small-latency event the machine model schedules (TLB/link/DRAM/retry
/// delays are all well under this many cycles).
const DEFAULT_BUCKETS: usize = 4096;

/// A deterministic min-queue of timestamped events.
///
/// Events popped in nondecreasing cycle order; events pushed for the same
/// cycle come out in the order they were pushed (FIFO tie-breaking).
///
/// # Example
///
/// ```
/// use barre_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(3, "b");
/// q.push(3, "c");
/// q.push(1, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![(1, "a"), (3, "b"), (3, "c")]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The wheel: bucket `i` holds events with `at & mask == i`, sorted
    /// by `(at, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: u64,
    /// Events at or beyond the wheel horizon (`cur + buckets.len()`).
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Next cycle the pop scan inspects (≤ every pending event's cycle).
    cur: Cycle,
    /// Pending events across wheel and overflow.
    len: usize,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default wheel size.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates an empty queue sized for roughly `pending_hint`
    /// simultaneously scheduled events (a workload-derived capacity
    /// hint). The wheel size still bounds per-bucket occupancy; the hint
    /// pre-reserves bucket storage so the warm-up phase does not grow
    /// every `VecDeque` one push at a time.
    pub fn with_capacity(pending_hint: usize) -> Self {
        let mut q = Self::with_buckets(DEFAULT_BUCKETS);
        let per_bucket = pending_hint / DEFAULT_BUCKETS;
        if per_bucket > 0 {
            for b in &mut q.buckets {
                b.reserve(per_bucket);
            }
        }
        q
    }

    fn with_buckets(n: usize) -> Self {
        let n = n.next_power_of_two().max(2);
        Self {
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            mask: (n - 1) as u64,
            overflow: BinaryHeap::new(),
            cur: 0,
            len: 0,
            seq: 0,
            popped: 0,
        }
    }

    /// Cycle at or beyond which a push bypasses the wheel.
    fn horizon(&self) -> Cycle {
        self.cur.saturating_add(self.buckets.len() as u64)
    }

    /// Schedules `ev` to fire at absolute cycle `at`.
    pub fn push(&mut self, at: Cycle, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        // Pushing into the past is legal for a generic queue: rewind the
        // scan cursor so the event is still found (the simulator itself
        // only ever schedules at or after `now`).
        if at < self.cur {
            self.cur = at;
        }
        let e = Entry { at, seq, ev };
        if at >= self.horizon() {
            self.overflow.push(Reverse(e));
        } else {
            Self::bin(&mut self.buckets, self.mask, e);
        }
        self.len += 1;
    }

    /// Inserts `e` into its wheel bucket, keeping the bucket sorted by
    /// `(at, seq)`. The common case — the newest event of the bucket's
    /// latest cycle — is an O(1) append.
    fn bin(buckets: &mut [VecDeque<Entry<E>>], mask: u64, e: Entry<E>) {
        let b = &mut buckets[(e.at & mask) as usize];
        match b.back() {
            Some(back) if (back.at, back.seq) > (e.at, e.seq) => {
                let pos = b.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
                b.insert(pos, e);
            }
            _ => b.push_back(e),
        }
    }

    /// Moves overflow events that fell inside the wheel horizon into
    /// their buckets.
    fn drain_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(Reverse(front)) = self.overflow.peek() {
            if front.at >= horizon {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else {
                break;
            };
            Self::bin(&mut self.buckets, self.mask, e);
        }
    }

    /// Smallest pending cycle across wheel and overflow; `None` when
    /// empty. O(bucket count) — used by the sparse-jump path and
    /// [`peek_cycle`](Self::peek_cycle), never by the dense fast path.
    fn min_pending_cycle(&self) -> Option<Cycle> {
        let wheel_min = self.buckets.iter().filter_map(|b| b.front().map(|e| e.at));
        let over_min = self.overflow.peek().map(|Reverse(e)| e.at);
        wheel_min.chain(over_min).min()
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        self.drain_overflow();
        let mut scanned = 0usize;
        loop {
            // Anything the cursor is about to inspect must be on the
            // wheel, including overflow events whose cycle the cursor
            // just reached (cheap peek, usually one comparison).
            while let Some(Reverse(front)) = self.overflow.peek() {
                if front.at > self.cur {
                    break;
                }
                let Some(Reverse(e)) = self.overflow.pop() else {
                    break;
                };
                Self::bin(&mut self.buckets, self.mask, e);
            }
            let b = (self.cur & self.mask) as usize;
            if let Some(front) = self.buckets[b].front() {
                if front.at == self.cur {
                    let Some(e) = self.buckets[b].pop_front() else {
                        break None;
                    };
                    self.len -= 1;
                    self.popped += 1;
                    break Some((e.at, e.ev));
                }
            }
            self.cur += 1;
            scanned += 1;
            if scanned >= self.buckets.len() {
                // A full fruitless revolution: the next event is far
                // away. Jump straight to the global minimum instead of
                // walking every intermediate cycle.
                let Some(min) = self.min_pending_cycle() else {
                    break None;
                };
                self.cur = min;
                self.drain_overflow();
                scanned = 0;
            }
        }
    }

    /// Cycle of the earliest pending event, without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.min_pending_cycle()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events processed (popped) so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "c");
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
    }

    #[test]
    fn tracks_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(1));
        q.pop();
        assert_eq!(q.processed(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Events beyond the wheel ride the overflow heap and re-bin as
        // the cursor approaches; order must be unaffected.
        let mut q = EventQueue::new();
        q.push(1_000_000, "far");
        q.push(3, "near");
        q.push(2_000_000_000, "very far");
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((1_000_000, "far")));
        assert_eq!(q.pop(), Some((2_000_000_000, "very far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_aliasing_keeps_cycle_order() {
        // Cycles that share a bucket (differ by the wheel size) must
        // still come out in cycle order, whatever the push order.
        let n = 4096u64;
        let mut q = EventQueue::new();
        q.push(5 + 2 * n, "c");
        q.push(5, "a");
        q.push(5 + n, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5 + n, "b")));
        assert_eq!(q.pop(), Some((5 + 2 * n, "c")));
    }

    #[test]
    fn push_into_the_past_is_found() {
        let mut q = EventQueue::new();
        q.push(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        q.push(40, "past");
        q.push(120, "future");
        assert_eq!(q.pop(), Some((40, "past")));
        assert_eq!(q.pop(), Some((120, "future")));
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut a = EventQueue::with_capacity(100_000);
        let mut b = EventQueue::new();
        for i in 0..1000u64 {
            a.push(i % 37, i);
            b.push(i % 37, i);
        }
        for _ in 0..1000 {
            assert_eq!(a.pop(), b.pop());
        }
    }

    /// Reference model: a stable sort over `(cycle, push order)`.
    fn reference_order(pushes: &[(Cycle, u64)]) -> Vec<(Cycle, u64)> {
        let mut v: Vec<(Cycle, u64)> = pushes.to_vec();
        v.sort_by_key(|&(at, i)| (at, i));
        v
    }

    #[test]
    fn property_matches_reference_model_on_random_schedules() {
        // Seeded random schedules spanning buckets, aliased cycles, and
        // far-overflow delays; pop order must equal the reference
        // stable sort for every seed.
        for seed in 0..8u64 {
            let mut rng = Rng::new(0xCA1E_0000 ^ seed);
            let mut q = EventQueue::new();
            let mut pushes: Vec<(Cycle, u64)> = Vec::new();
            for i in 0..2000u64 {
                // Mix of near, aliased, and far-future delays.
                let at = match rng.next_u64() % 10 {
                    0..=5 => rng.next_u64() % 512,
                    6..=7 => 4096 * (1 + rng.next_u64() % 3) + rng.next_u64() % 8,
                    8 => 100_000 + rng.next_u64() % 1000,
                    _ => 10_000_000 + rng.next_u64() % 100,
                };
                q.push(at, i);
                pushes.push((at, i));
            }
            let expect = reference_order(&pushes);
            for (at, i) in expect {
                assert_eq!(q.pop(), Some((at, i)), "seed {seed} diverged");
            }
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn property_interleaved_pushes_respect_running_clock() {
        // Simulator-shaped usage: every push is at or after the cycle of
        // the last popped event. Compare against an incremental
        // reference model (a vec re-sorted by (cycle, seq) per pop).
        let mut rng = Rng::new(0xBEEF);
        let mut q = EventQueue::new();
        let mut model: Vec<(Cycle, u64)> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..200 {
            let at = rng.next_u64() % 64;
            q.push(at, seq);
            model.push((at, seq));
            seq += 1;
        }
        for _ in 0..5000 {
            model.sort_by_key(|&(at, s)| (at, s));
            let expect = (!model.is_empty()).then(|| model.remove(0));
            let got = q.pop();
            assert_eq!(got, expect);
            let Some((now, _)) = got else { break };
            // Push 0–2 new events at or after the running clock.
            for _ in 0..(rng.next_u64() % 3) {
                let delay = match rng.next_u64() % 8 {
                    0..=5 => rng.next_u64() % 300,
                    6 => 5000 + rng.next_u64() % 5000,
                    _ => 50_000 + rng.next_u64() % 10_000,
                };
                q.push(now + delay, seq);
                model.push((now + delay, seq));
                seq += 1;
            }
        }
    }
}
