//! Deterministic pseudo-random number generation.
//!
//! The simulator never consults wall-clock time or OS entropy; every
//! stochastic choice (workload addresses, hash seeds) flows from a
//! user-provided seed through [`Rng`], a xoshiro256** generator seeded via
//! SplitMix64 (the initialization recommended by the xoshiro authors).

/// A seedable xoshiro256** PRNG.
///
/// # Example
///
/// ```
/// use barre_sim::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A sample from a bounded power-law-ish (Zipf-like, exponent ~1)
    /// distribution over `[0, n)`; used for hot-page skew in graph
    /// workloads. Smaller indices are more likely.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf_like(&mut self, n: u64) -> u64 {
        assert!(n > 0, "n must be nonzero");
        // Inverse-CDF of p(x) ~ 1/(x+1) over [0, n): x = n^u - 1.
        let u = self.next_f64();
        let x = ((n as f64).powf(u) - 1.0) as u64;
        x.min(n - 1)
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(4);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} out of range");
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut r = Rng::new(6);
        let mut low = 0u32;
        for _ in 0..10_000 {
            if r.zipf_like(1000) < 100 {
                low += 1;
            }
        }
        // With exponent-1 skew, far more than 10% of mass is in the lowest decile.
        assert!(low > 3_000, "low-decile draws: {low}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
