//! Deterministic discrete-event simulation kernel for the Barre Chord
//! MCM-GPU model.
//!
//! The whole reproduction is built on this small crate: a cycle-accurate
//! event queue with deterministic tie-breaking ([`EventQueue`]), a
//! latency/bandwidth link model ([`link::Link`]), statistics primitives
//! ([`stats`]) and a seedable, wall-clock-free RNG ([`rng`]).
//!
//! Determinism is a hard requirement — two runs with the same seed must
//! produce identical cycle counts — so each simulation is single-threaded,
//! events at the same cycle are ordered by insertion sequence, and no
//! `std::time` or hash-map iteration order leaks into results. Parallelism
//! lives strictly *between* independent runs: [`pool`] fans a batch of
//! simulation jobs across scoped worker threads and hands results back in
//! input order, so a sweep's output is identical at any thread count.
//!
//! # Example
//!
//! ```
//! use barre_sim::EventQueue;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.push(10, Ev::Pong);
//! q.push(5, Ev::Ping);
//! assert_eq!(q.pop(), Some((5, Ev::Ping)));
//! assert_eq!(q.pop(), Some((10, Ev::Pong)));
//! ```

pub mod fault;
pub mod link;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod stats;

pub use fault::{FaultCounts, FaultInjector, FaultPlan};
pub use link::Link;
pub use pool::PoolError;
pub use queue::EventQueue;
pub use rng::Rng;
pub use stats::{Counter, Histogram, RatioStat};

/// Simulation time, in GPU core cycles (the model assumes a 1 GHz clock, so
/// one cycle is one nanosecond when converting from the paper's latencies).
pub type Cycle = u64;
