//! Latency + bandwidth link model.
//!
//! Models a point-to-point channel (PCIe lane, one mesh hop, a DRAM
//! channel) with a fixed propagation latency and a finite serialization
//! bandwidth. Transfers occupy the head of the link back to back:
//! a message of `bytes` size departs no earlier than the previous
//! message's departure plus its own serialization time, and arrives a
//! propagation latency later. This is the classic "next free slot"
//! store-and-forward model; it captures queueing delay under contention,
//! which is what the paper's PCIe/IOMMU bottleneck analysis depends on.

use crate::Cycle;

/// A unidirectional channel with latency and bandwidth.
///
/// # Example
///
/// ```
/// use barre_sim::Link;
/// // 32-cycle latency, 64 bytes/cycle mesh hop.
/// let mut mesh = Link::new(32, 64);
/// let arrive_a = mesh.send(0, 64);   // 1 cycle serialization
/// let arrive_b = mesh.send(0, 64);   // queued behind a
/// assert_eq!(arrive_a, 0 + 1 + 32);
/// assert_eq!(arrive_b, 0 + 2 + 32);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    latency: Cycle,
    bytes_per_cycle: u64,
    next_free: Cycle,
    total_bytes: u64,
    total_msgs: u64,
    busy_cycles: Cycle,
}

impl Link {
    /// Creates a link with a propagation `latency` (cycles) and a
    /// serialization bandwidth of `bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: Cycle, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "link bandwidth must be nonzero");
        Self {
            latency,
            bytes_per_cycle,
            next_free: 0,
            total_bytes: 0,
            total_msgs: 0,
            busy_cycles: 0,
        }
    }

    /// Sends `bytes` at time `now`; returns the arrival cycle at the far
    /// end. Accounts for queueing behind earlier messages.
    pub fn send(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.send_jittered(now, bytes, 0)
    }

    /// Like [`send`](Self::send), but with `jitter` extra propagation
    /// cycles for this one message (a transient latency spike, as
    /// injected by `barre_sim::fault`). Jitter affects only the victim's
    /// propagation leg: the link head is still occupied for the normal
    /// serialization time, so later messages queue exactly as without
    /// the spike — a spiked message may be *overtaken* in delivery, which
    /// is why consumers of out-of-order-capable channels must key, not
    /// count, their in-flight state.
    ///
    /// All arithmetic saturates, so a degenerate configuration (huge
    /// latency or jitter near `Cycle::MAX`) pins at the horizon rather
    /// than wrapping into the past.
    pub fn send_jittered(&mut self, now: Cycle, bytes: u64, jitter: Cycle) -> Cycle {
        let start = now.max(self.next_free);
        let ser = self.serialization(bytes);
        self.next_free = start.saturating_add(ser);
        self.total_bytes = self.total_bytes.saturating_add(bytes);
        self.total_msgs = self.total_msgs.saturating_add(1);
        self.busy_cycles = self.busy_cycles.saturating_add(ser);
        self.next_free
            .saturating_add(self.latency)
            .saturating_add(jitter)
    }

    /// Serialization time for a message of `bytes` (at least one cycle).
    pub fn serialization(&self, bytes: u64) -> Cycle {
        bytes.div_ceil(self.bytes_per_cycle).max(1)
    }

    /// How many cycles a message sent `now` would wait before starting to
    /// serialize (0 when the link is idle). Used for best-effort drop
    /// decisions (F-Barre filter-update messages).
    pub fn backlog(&self, now: Cycle) -> Cycle {
        self.next_free.saturating_sub(now)
    }

    /// Propagation latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Serialization bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        self.bytes_per_cycle
    }

    /// Total bytes ever sent.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages ever sent.
    pub fn total_msgs(&self) -> u64 {
        self.total_msgs
    }

    /// Cycles the link head spent serializing messages.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Resets dynamic state (occupancy and statistics), keeping the
    /// configured latency/bandwidth.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.total_bytes = 0;
        self.total_msgs = 0;
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_adds_latency_plus_serialization() {
        let mut l = Link::new(150, 16);
        // 64 bytes at 16 B/cy = 4 cycles serialization.
        assert_eq!(l.send(100, 64), 100 + 4 + 150);
    }

    #[test]
    fn contention_queues_messages() {
        let mut l = Link::new(10, 1);
        let a = l.send(0, 8);
        let b = l.send(0, 8);
        let c = l.send(0, 8);
        assert_eq!(a, 8 + 10);
        assert_eq!(b, 16 + 10);
        assert_eq!(c, 24 + 10);
    }

    #[test]
    fn link_drains_when_idle() {
        let mut l = Link::new(10, 1);
        l.send(0, 4);
        // Sent long after the first message drained: no queueing.
        assert_eq!(l.send(1000, 4), 1000 + 4 + 10);
    }

    #[test]
    fn minimum_one_cycle_serialization() {
        let mut l = Link::new(0, 1000);
        assert_eq!(l.send(0, 1), 1);
        assert_eq!(l.serialization(1), 1);
    }

    #[test]
    fn backlog_reflects_pending_work() {
        let mut l = Link::new(5, 1);
        assert_eq!(l.backlog(0), 0);
        l.send(0, 100);
        assert_eq!(l.backlog(0), 100);
        assert_eq!(l.backlog(60), 40);
        assert_eq!(l.backlog(200), 0);
    }

    #[test]
    fn jitter_delays_only_the_victim() {
        let mut l = Link::new(10, 1);
        let a = l.send_jittered(0, 4, 500);
        // The spiked message arrives late…
        assert_eq!(a, 4 + 10 + 500);
        // …but the link head frees at the normal time, so the next
        // message is NOT pushed out by the spike and overtakes it.
        let b = l.send(0, 4);
        assert_eq!(b, 8 + 10);
        assert!(b < a, "follower should overtake the spiked message");
    }

    #[test]
    fn zero_jitter_matches_plain_send() {
        let mut a = Link::new(7, 3);
        let mut b = Link::new(7, 3);
        for (t, bytes) in [(0, 10), (2, 64), (50, 1)] {
            assert_eq!(a.send(t, bytes), b.send_jittered(t, bytes, 0));
        }
        assert_eq!(a.backlog(0), b.backlog(0));
    }

    #[test]
    fn send_saturates_instead_of_wrapping() {
        let mut l = Link::new(Cycle::MAX - 5, 1);
        // latency alone nearly overflows; jitter pushes past MAX.
        let arr = l.send_jittered(Cycle::MAX - 100, 64, Cycle::MAX);
        assert_eq!(arr, Cycle::MAX);
        // The link remains usable and monotone afterwards.
        assert!(l.send(Cycle::MAX - 100, 1) >= Cycle::MAX - 100);
    }

    #[test]
    fn serialization_order_is_fifo_under_spikes() {
        // Even when jitter reorders deliveries, head-of-link occupancy
        // (and therefore backlog accounting) stays first-come-first-served.
        let mut l = Link::new(20, 2);
        let mut next_free_seen = 0;
        for (i, jitter) in [0u64, 900, 0, 300, 0].iter().enumerate() {
            l.send_jittered(i as Cycle, 16, *jitter);
            let nf = l.backlog(0);
            assert!(nf >= next_free_seen, "occupancy must grow FIFO");
            next_free_seen = nf;
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(5, 2);
        l.send(0, 10);
        l.send(0, 6);
        assert_eq!(l.total_bytes(), 16);
        assert_eq!(l.total_msgs(), 2);
        assert_eq!(l.busy_cycles(), 5 + 3);
        l.reset();
        assert_eq!(l.total_msgs(), 0);
        assert_eq!(l.backlog(0), 0);
    }
}
