//! Deterministic fault injection.
//!
//! A [`FaultPlan`] declares *what* can go wrong (drop rates, latency
//! spikes, walker stalls, PEC corruption) and a [`FaultInjector`] decides
//! *when*, by drawing from per-fault-kind streams forked off the
//! simulation seed. Two runs with the same seed and the same plan make
//! bit-identical decisions; a disabled fault kind makes **zero** RNG
//! draws, so the empty plan perturbs nothing — a fault-free run with an
//! injector attached is cycle-identical to a run without one.
//!
//! The injector is deliberately passive: it only answers questions
//! ("should this message drop?", "how long does this walk stall?") and
//! counts what it injected. The machine owns recovery — retry/backoff,
//! fallback translation, watchdog — so the fault model stays independent
//! of the translation pipeline it stresses.

use crate::{Cycle, Rng};

/// Declarative description of the faults to inject during a run.
///
/// All rates are probabilities in `[0, 1]`, applied independently per
/// opportunity (per message, per walk dispatch, per PEC fill). The
/// default plan is empty: every rate zero, every duration zero.
///
/// # Example
///
/// ```
/// use barre_sim::fault::FaultPlan;
/// let plan = FaultPlan {
///     ats_request_drop: 0.05,
///     ..FaultPlan::default()
/// };
/// assert!(plan.validate().is_ok());
/// assert!(!plan.is_empty());
/// assert!(plan.affects_ats());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that an ATS translation request vanishes on the PCIe
    /// upstream link (sent, never delivered).
    pub ats_request_drop: f64,
    /// Probability that an ATS translation response vanishes on the PCIe
    /// downstream link.
    pub ats_response_drop: f64,
    /// Probability that a PCIe message suffers an extra latency spike.
    pub pcie_spike_rate: f64,
    /// Extra propagation delay, in cycles, added to a spiked message.
    pub pcie_spike_cycles: Cycle,
    /// Probability that a page-table-walker dispatch stalls (models DRAM
    /// refresh collisions, host memory contention).
    pub walker_stall_rate: f64,
    /// Extra walk latency, in cycles, for a stalled walker dispatch.
    pub walker_stall_cycles: Cycle,
    /// Probability that a PEC-buffer fill is corrupted: the incoming
    /// entry is discarded and a random resident entry evicted, forcing
    /// later requests back onto the full translation path.
    pub pec_corrupt_rate: f64,
}

impl FaultPlan {
    /// The plan that injects nothing (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault kind is enabled.
    pub fn is_empty(&self) -> bool {
        self.ats_request_drop == 0.0
            && self.ats_response_drop == 0.0
            && self.pcie_spike_rate == 0.0
            && self.walker_stall_rate == 0.0
            && self.pec_corrupt_rate == 0.0
    }

    /// True when the plan can lose or abnormally delay ATS traffic, i.e.
    /// when the machine must arm retry deadlines. Kept separate from
    /// [`is_empty`](Self::is_empty) so deadline events are only scheduled
    /// when they can matter — an always-armed timer would shift the final
    /// event horizon and break empty-plan cycle identity.
    pub fn affects_ats(&self) -> bool {
        self.ats_request_drop > 0.0
            || self.ats_response_drop > 0.0
            || self.pcie_spike_rate > 0.0
            || self.walker_stall_rate > 0.0
    }

    /// Checks that every rate is a probability and spike/stall durations
    /// are present when their rates are.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("ats_request_drop", self.ats_request_drop),
            ("ats_response_drop", self.ats_response_drop),
            ("pcie_spike_rate", self.pcie_spike_rate),
            ("walker_stall_rate", self.walker_stall_rate),
            ("pec_corrupt_rate", self.pec_corrupt_rate),
        ];
        for (name, r) in rates {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} = {r} is not a probability in [0, 1]"));
            }
        }
        if self.pcie_spike_rate > 0.0 && self.pcie_spike_cycles == 0 {
            return Err("pcie_spike_rate set but pcie_spike_cycles is 0".into());
        }
        if self.walker_stall_rate > 0.0 && self.walker_stall_cycles == 0 {
            return Err("walker_stall_rate set but walker_stall_cycles is 0".into());
        }
        Ok(())
    }
}

/// Per-kind tally of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// ATS requests dropped in flight.
    pub requests_dropped: u64,
    /// ATS responses dropped in flight.
    pub responses_dropped: u64,
    /// PCIe messages delayed by a latency spike.
    pub pcie_spikes: u64,
    /// Walker dispatches stalled.
    pub walker_stalls: u64,
    /// PEC-buffer fills corrupted.
    pub pec_corruptions: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.requests_dropped
            + self.responses_dropped
            + self.pcie_spikes
            + self.walker_stalls
            + self.pec_corruptions
    }
}

/// Stateful decision engine executing a [`FaultPlan`].
///
/// Each fault kind draws from its own RNG stream (forked from
/// `seed`), so enabling one kind never shifts the decisions of another.
/// A kind whose rate is zero never touches its stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    req_rng: Rng,
    resp_rng: Rng,
    spike_rng: Rng,
    stall_rng: Rng,
    pec_rng: Rng,
    counts: FaultCounts,
}

/// Per-kind salts keep the streams independent even for adjacent seeds.
const SALT_REQ: u64 = 0x6661_756c_745f_7271; // "fault_rq"
const SALT_RESP: u64 = 0x6661_756c_745f_7273;
const SALT_SPIKE: u64 = 0x6661_756c_745f_7370;
const SALT_STALL: u64 = 0x6661_756c_745f_7374;
const SALT_PEC: u64 = 0x6661_756c_745f_7065;

impl FaultInjector {
    /// Builds an injector for `plan`, with all decision streams derived
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`]; validate at the
    /// configuration boundary first.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        if let Err(e) = plan.validate() {
            // barre:allow(P001) documented-panic API (see # Panics above)
            panic!("invalid fault plan: {e}");
        }
        Self {
            plan,
            req_rng: Rng::new(seed ^ SALT_REQ),
            resp_rng: Rng::new(seed ^ SALT_RESP),
            spike_rng: Rng::new(seed ^ SALT_SPIKE),
            stall_rng: Rng::new(seed ^ SALT_STALL),
            pec_rng: Rng::new(seed ^ SALT_PEC),
            counts: FaultCounts::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Should this ATS request be dropped in flight?
    pub fn drop_request(&mut self) -> bool {
        if self.plan.ats_request_drop == 0.0 {
            return false;
        }
        let hit = self.req_rng.chance(self.plan.ats_request_drop);
        if hit {
            self.counts.requests_dropped += 1;
        }
        hit
    }

    /// Should this ATS response be dropped in flight?
    pub fn drop_response(&mut self) -> bool {
        if self.plan.ats_response_drop == 0.0 {
            return false;
        }
        let hit = self.resp_rng.chance(self.plan.ats_response_drop);
        if hit {
            self.counts.responses_dropped += 1;
        }
        hit
    }

    /// Extra PCIe propagation delay for this message (0 = no spike).
    pub fn pcie_spike(&mut self) -> Cycle {
        if self.plan.pcie_spike_rate == 0.0 {
            return 0;
        }
        if self.spike_rng.chance(self.plan.pcie_spike_rate) {
            self.counts.pcie_spikes += 1;
            self.plan.pcie_spike_cycles
        } else {
            0
        }
    }

    /// Extra walk latency for this walker dispatch (0 = no stall).
    pub fn walker_stall(&mut self) -> Cycle {
        if self.plan.walker_stall_rate == 0.0 {
            return 0;
        }
        if self.stall_rng.chance(self.plan.walker_stall_rate) {
            self.counts.walker_stalls += 1;
            self.plan.walker_stall_cycles
        } else {
            0
        }
    }

    /// Should this PEC-buffer fill be corrupted? On `true` the caller
    /// discards the fill and evicts the entry at the returned index
    /// (modulo the buffer's occupancy).
    pub fn corrupt_pec(&mut self) -> Option<u64> {
        if self.plan.pec_corrupt_rate == 0.0 {
            return None;
        }
        if self.pec_rng.chance(self.plan.pec_corrupt_rate) {
            self.counts.pec_corruptions += 1;
            Some(self.pec_rng.next_u64())
        } else {
            None
        }
    }
}

/// Salt for the queue-transport drop stream (distinct from every
/// simulation-fault stream, so a queue chaos run never perturbs them).
const SALT_NET: u64 = 0x6661_756c_745f_6e74; // "fault_nt"

/// Deterministic message-drop decider for the `barre queue` transport
/// path (the chaos hook behind `BARRE_QUEUE_FAULTS=<seed>:<rate>`).
///
/// Same contract as [`FaultInjector`]: one salted stream forked from the
/// seed, bit-identical decisions for equal seeds, a zero rate makes zero
/// draws. The coordinator asks it whether to "lose" an incoming
/// heartbeat (simulating a partition), which forces the lease-expiry
/// re-dispatch path deterministically in tests. Out-of-range rates are
/// clamped to `[0, 1]` rather than panicking — this runs inside a
/// daemon. The rate is held as integer parts-per-million so the
/// decision stream never depends on float evaluation order.
#[derive(Debug, Clone)]
pub struct NetFaultInjector {
    rate_ppm: u32,
    rng: Rng,
    dropped: u64,
}

/// One million: the fixed-point denominator for drop rates.
const PPM: u64 = 1_000_000;

impl NetFaultInjector {
    /// Builds a decider dropping messages with probability `rate`
    /// (clamped to `[0, 1]`), decisions forked from `seed`. The rate is
    /// quantized to parts-per-million at this boundary.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate_ppm = if rate.is_finite() {
            (rate.clamp(0.0, 1.0) * PPM as f64).round() as u32
        } else {
            0
        };
        Self {
            rate_ppm,
            rng: Rng::new(seed ^ SALT_NET),
            dropped: 0,
        }
    }

    /// Parses the `<seed>:<rate>` form used by the
    /// `BARRE_QUEUE_FAULTS` environment hook.
    ///
    /// # Errors
    ///
    /// A description of the malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed, rate) = spec
            .split_once(':')
            .ok_or_else(|| format!("expected <seed>:<rate>, got {spec:?}"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| format!("bad seed in {spec:?}"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("bad rate in {spec:?}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate {rate} is not a probability in [0, 1]"));
        }
        Ok(Self::new(seed, rate))
    }

    /// Should this transport message be dropped?
    pub fn drop_message(&mut self) -> bool {
        if self.rate_ppm == 0 {
            return false;
        }
        let hit = self.rng.next_below(PPM) < u64::from(self.rate_ppm);
        if hit {
            self.dropped = self.dropped.saturating_add(1);
        }
        hit
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 42);
        let before = inj.req_rng.clone().next_u64();
        for _ in 0..1000 {
            assert!(!inj.drop_request());
            assert!(!inj.drop_response());
            assert_eq!(inj.pcie_spike(), 0);
            assert_eq!(inj.walker_stall(), 0);
            assert!(inj.corrupt_pec().is_none());
        }
        assert_eq!(inj.counts().total(), 0);
        // The streams were never advanced.
        assert_eq!(inj.req_rng.next_u64(), before);
    }

    #[test]
    fn same_seed_same_plan_same_decisions() {
        let plan = FaultPlan {
            ats_request_drop: 0.3,
            ats_response_drop: 0.2,
            pcie_spike_rate: 0.1,
            pcie_spike_cycles: 500,
            walker_stall_rate: 0.15,
            walker_stall_cycles: 200,
            pec_corrupt_rate: 0.05,
        };
        let mut a = FaultInjector::new(plan, 7);
        let mut b = FaultInjector::new(plan, 7);
        for _ in 0..2000 {
            assert_eq!(a.drop_request(), b.drop_request());
            assert_eq!(a.drop_response(), b.drop_response());
            assert_eq!(a.pcie_spike(), b.pcie_spike());
            assert_eq!(a.walker_stall(), b.walker_stall());
            assert_eq!(a.corrupt_pec(), b.corrupt_pec());
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0);
    }

    #[test]
    fn kinds_draw_from_independent_streams() {
        let drops_only = FaultPlan {
            ats_request_drop: 0.5,
            ..FaultPlan::default()
        };
        let drops_and_spikes = FaultPlan {
            ats_request_drop: 0.5,
            pcie_spike_rate: 0.5,
            pcie_spike_cycles: 100,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(drops_only, 11);
        let mut b = FaultInjector::new(drops_and_spikes, 11);
        // Enabling spikes must not change the request-drop decisions.
        for _ in 0..500 {
            b.pcie_spike();
            assert_eq!(a.drop_request(), b.drop_request());
        }
    }

    #[test]
    fn rates_observed_approximately() {
        let plan = FaultPlan {
            ats_request_drop: 0.25,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 3);
        let n = 100_000;
        let dropped = (0..n).filter(|_| inj.drop_request()).count();
        let frac = dropped as f64 / n as f64;
        assert!((0.23..0.27).contains(&frac), "observed {frac}");
        assert_eq!(inj.counts().requests_dropped, dropped as u64);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan {
            ats_request_drop: 1.5,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            ats_response_drop: -0.1,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            pcie_spike_rate: 0.1,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            walker_stall_rate: 0.1,
            walker_stall_cycles: 0,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan::none().validate().is_ok());
    }

    #[test]
    fn net_faults_are_seed_deterministic_and_zero_rate_never_drops() {
        let mut a = NetFaultInjector::new(9, 0.4);
        let mut b = NetFaultInjector::new(9, 0.4);
        for _ in 0..1000 {
            assert_eq!(a.drop_message(), b.drop_message());
        }
        assert_eq!(a.dropped(), b.dropped());
        assert!(a.dropped() > 0);
        let mut off = NetFaultInjector::new(9, 0.0);
        assert!((0..1000).all(|_| !off.drop_message()));
        assert_eq!(off.dropped(), 0);
    }

    #[test]
    fn net_fault_spec_parses_and_rejects_garbage() {
        assert!(NetFaultInjector::parse("7:0.5").is_ok());
        assert!(NetFaultInjector::parse("7").is_err());
        assert!(NetFaultInjector::parse("x:0.5").is_err());
        assert!(NetFaultInjector::parse("7:nope").is_err());
        assert!(NetFaultInjector::parse("7:1.5").is_err());
    }

    #[test]
    fn is_empty_and_affects_ats() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::none().affects_ats());
        let pec_only = FaultPlan {
            pec_corrupt_rate: 0.1,
            ..FaultPlan::default()
        };
        assert!(!pec_only.is_empty());
        // PEC corruption can't lose ATS traffic — no deadlines needed.
        assert!(!pec_only.affects_ats());
        let spikes = FaultPlan {
            pcie_spike_rate: 0.1,
            pcie_spike_cycles: 10,
            ..FaultPlan::default()
        };
        assert!(spikes.affects_ats());
    }
}
