//! A zero-dependency scoped worker pool for independent simulation jobs.
//!
//! Every paper figure is a sweep of independent `(spec, cfg, seed)`
//! simulations; each simulation stays single-threaded and deterministic,
//! and the pool only exploits the *run-level* independence between them
//! (the split MGSim and "Parallelizing a modern GPU simulator" both
//! identify as the safe one). Jobs are claimed from a shared atomic
//! cursor — scheduling is racy on purpose — but results are written into
//! per-job slots and returned **in input order**, so the output of
//! [`run_ordered`] is byte-identical whatever the thread count.
//!
//! # Example
//!
//! ```
//! use barre_sim::pool;
//! let jobs: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! let out = pool::run_ordered(jobs, 4).unwrap();
//! assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A worker thread died before finishing its jobs (it panicked). The
/// pool never panics itself; callers fold this into their own error
/// taxonomy (the system crate maps it to `SimError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Number of workers that panicked.
    pub panicked_workers: usize,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} worker thread(s) panicked before completing their jobs",
            self.panicked_workers
        )
    }
}

impl std::error::Error for PoolError {}

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "BARRE_JOBS";

/// Resolves the worker count for a batch: an explicit request wins, then
/// the [`JOBS_ENV`] environment variable, then the machine's available
/// parallelism. Always at least 1. The returned count never influences
/// simulation *results* — only wall-clock time — so reading the
/// environment here cannot break reproducibility.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    if let Some(j) = requested {
        return j.max(1);
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(j) = v.trim().parse::<usize>() {
            return j.max(1);
        }
    }
    default_jobs()
}

/// The machine's available parallelism (1 when it cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Locks a mutex, riding through poisoning: a poisoned slot only means
/// another worker panicked mid-batch, which the caller already surfaces
/// as a [`PoolError`]; the data itself is a plain value.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `jobs` across `min(threads, jobs.len())` scoped worker threads
/// and returns the results in input order.
///
/// With `threads <= 1` (or zero/one job) everything runs inline on the
/// caller's thread — the serial fallback path (`--jobs 1`) used to
/// cross-check parallel results.
///
/// # Errors
///
/// [`PoolError`] when a worker panicked; every completed job's result is
/// discarded so a partial batch can never masquerade as a full one.
pub fn run_ordered<T, F>(jobs: Vec<F>, threads: usize) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let cancel = AtomicBool::new(false);
    let out = run_cancellable(jobs, threads, &cancel)?;
    let mut full = Vec::with_capacity(out.len());
    for slot in out {
        match slot {
            Some(v) => full.push(v),
            // The flag is never set, so a missing slot means a worker
            // died without the join detecting it — surface it.
            None => {
                return Err(PoolError {
                    panicked_workers: 1,
                })
            }
        }
    }
    Ok(full)
}

/// [`run_ordered`] with cooperative cancellation: jobs that have not been
/// claimed when `cancel` becomes `true` are skipped and come back as
/// `None` (in-flight jobs always run to completion — a claimed simulation
/// is never torn down mid-run). The sweep supervisor uses this to drain
/// gracefully on SIGINT: completed results are preserved, unstarted work
/// is left for a `--resume` pass.
///
/// # Errors
///
/// [`PoolError`] when a worker panicked; as with [`run_ordered`], a
/// partial batch never masquerades as a full one.
pub fn run_cancellable<T, F>(
    jobs: Vec<F>,
    threads: usize,
    cancel: &AtomicBool,
) -> Result<Vec<Option<T>>, PoolError>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = threads.min(n);
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for f in jobs {
            if cancel.load(Ordering::SeqCst) {
                out.push(None);
            } else {
                out.push(Some(f()));
            }
        }
        return Ok(out);
    }
    // Job intake: each `FnOnce` sits behind its own mutex so exactly one
    // worker can take it; the atomic cursor hands out indices.
    let tasks: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panicked_workers = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    if cancel.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let Some(task) = lock_unpoisoned(&tasks[i]).take() else {
                        continue;
                    };
                    let out = task();
                    *lock_unpoisoned(&slots[i]) = Some(out);
                })
            })
            .collect();
        // Joining manually consumes any panic payload, so the scope
        // itself never re-panics — the failure becomes a value.
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .filter(Result::is_err)
            .count()
    });
    if panicked_workers > 0 {
        return Err(PoolError { panicked_workers });
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Stagger job durations so completion order differs from input
        // order; the output must still be input-ordered.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    let mut acc = i;
                    for _ in 0..(32 - i) * 10_000 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    (i, acc)
                }
            })
            .collect();
        let out = run_ordered(jobs, 8).expect("pool failed");
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(*i, idx as u64);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || {
            (0..16u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9).rotate_left(7))
                .collect::<Vec<_>>()
        };
        let serial = run_ordered(mk(), 1).expect("serial");
        let parallel = run_ordered(mk(), 4).expect("parallel");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_job_batches() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert_eq!(run_ordered(none, 8).expect("empty"), Vec::<u32>::new());
        let one = vec![|| 7u32];
        assert_eq!(run_ordered(one, 8).expect("one"), vec![7]);
    }

    #[test]
    fn worker_panic_is_an_error_not_a_crash() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job bug")),
            Box::new(|| 3),
        ];
        let err = run_ordered(jobs, 2).expect_err("must fail");
        assert!(err.panicked_workers >= 1);
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn cancel_skips_unstarted_jobs_serially() {
        let cancel = AtomicBool::new(false);
        let flag = &cancel;
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(move || {
                flag.store(true, Ordering::SeqCst);
                2
            }),
            Box::new(|| 3),
        ];
        let out = run_cancellable(jobs, 1, &cancel).expect("pool");
        assert_eq!(out, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn cancel_set_up_front_skips_everything() {
        let cancel = AtomicBool::new(true);
        let jobs: Vec<fn() -> u32> = vec![|| 1, || 2, || 3, || 4];
        let out = run_cancellable(jobs, 4, &cancel).expect("pool");
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn uncancelled_run_cancellable_matches_run_ordered() {
        let mk = || (0..12u64).map(|i| move || i * 3).collect::<Vec<_>>();
        let cancel = AtomicBool::new(false);
        let a = run_cancellable(mk(), 4, &cancel).expect("cancellable");
        let b = run_ordered(mk(), 4).expect("ordered");
        assert_eq!(a.into_iter().map(Option::unwrap).collect::<Vec<_>>(), b);
    }

    #[test]
    fn resolve_jobs_prefers_explicit_request() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
