//! Statistics primitives used by every component of the model.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use barre_sim::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A hit/total ratio (TLB hit rates, filter hit rates, coalescing rates).
///
/// # Example
///
/// ```
/// use barre_sim::RatioStat;
/// let mut r = RatioStat::default();
/// r.record(true);
/// r.record(false);
/// assert_eq!(r.rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RatioStat {
    hits: u64,
    total: u64,
}

impl RatioStat {
    /// Creates a zeroed ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Hit fraction in `[0, 1]`; 0 when empty.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl fmt::Display for RatioStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.1}%)",
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

/// A power-of-two-bucketed histogram for latencies and VPN gaps
/// (Fig 5 uses this to plot the gap distribution of consecutive IOMMU
/// requests).
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts zeros
/// and ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - value.leading_zeros()) as usize - 1
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Total of all samples (exact, in u128 to survive long runs).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The raw bucket counts, including empty buckets (bucket `i` counts
    /// samples in `[2^(i-1), 2^i)`; bucket 0 counts zeros and ones).
    /// Together with [`Histogram::count`], [`Histogram::sum`] and
    /// [`Histogram::max`] this is the histogram's full state, which the
    /// run journal serializes so a resumed sweep reproduces metrics
    /// byte-identically.
    pub fn raw_buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from its serialized state (the inverse of
    /// reading [`Histogram::raw_buckets`] / [`Histogram::count`] /
    /// [`Histogram::sum`] / [`Histogram::max`]). The caller is trusted to
    /// pass values that came from a real histogram; no cross-field
    /// consistency is enforced.
    pub fn from_raw(buckets: Vec<u64>, count: u64, sum: u128, max: u64) -> Self {
        Self {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// `(bucket_upper_bound, count)` pairs for nonempty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Fraction of samples ≤ `value`.
    pub fn fraction_le(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(value);
        let below: u64 = self.buckets.iter().take(b + 1).sum();
        below as f64 / self.count as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(RatioStat::new().rate(), 0.0);
    }

    #[test]
    fn ratio_tracks_hits() {
        let mut r = RatioStat::new();
        for i in 0..10 {
            r.record(i % 4 == 0);
        }
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 10);
        assert!((r.rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(1, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn histogram_mean_and_fraction() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 1000] {
            h.record(v);
        }
        assert!((h.mean() - 250.75).abs() < 1e-9);
        assert!(h.fraction_le(1) >= 0.75);
        assert_eq!(h.fraction_le(1024), 1.0);
    }

    #[test]
    fn histogram_empty_display() {
        let h = Histogram::new();
        assert_eq!(h.to_string(), "n=0 mean=0.0 max=0");
    }
}
