//! Conservation-law sanitizer tests (run with `--features sanitizer`).
//!
//! Two directions: a healthy machine passes every epoch check over a
//! full run (the run itself would `debug_assert!` otherwise), and an
//! injected accounting bug trips the sanitizer with a structured report
//! naming the broken law.

#![cfg(feature = "sanitizer")]

use barre_system::{build_machine, run_app, smoke_config};
use barre_workloads::AppId;

#[test]
fn clean_run_passes_every_epoch_check() {
    // smoke_config has no IOMMU TLB and no multicast, so all four laws
    // (including exact translation conservation at drain) are armed.
    // Any epoch violation would debug_assert! inside run().
    let cfg = smoke_config();
    let m = run_app(AppId::Gemv, &cfg, 1).expect("run failed");
    assert!(m.total_cycles > 0);
}

#[test]
fn fresh_machine_satisfies_all_laws() {
    let cfg = smoke_config();
    let machine = build_machine(&[AppId::Gemv.spec()], &cfg, 1).expect("build failed");
    let violations = machine.conservation_violations(false);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(machine.sanitizer_report().is_clean());
}

#[test]
fn injected_accounting_bug_trips_with_structured_report() {
    let cfg = smoke_config();
    let mut machine = build_machine(&[AppId::Gemv.spec()], &cfg, 1).expect("build failed");
    // A serviced translation that answers no request: serviced (1) now
    // exceeds ats_requests (0).
    machine.sanitizer_inject_accounting_skew();
    let violations = machine.conservation_violations(false);
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.law, "translation-conservation");
    assert!(v.detail.contains("serviced 1"), "{}", v.detail);
    assert!(v.detail.contains("0 ats_requests"), "{}", v.detail);

    // The rendered report is structured: summary header + one
    // bracket-tagged line per violation.
    let mut report = barre_system::SanitizerReport::default();
    report.epochs_checked = 1;
    report.violations = violations;
    let text = report.render();
    assert!(
        text.contains("1 violation(s) over 1 epoch check(s)"),
        "{text}"
    );
    assert!(
        text.contains("[translation-conservation] cycle=0"),
        "{text}"
    );
}

#[test]
fn drain_check_requires_exact_equality() {
    let cfg = smoke_config();
    let mut machine = build_machine(&[AppId::Gemv.spec()], &cfg, 1).expect("build failed");
    // serviced == requests == 0: mid-run AND drain checks both pass...
    assert!(machine.conservation_violations(true).is_empty());
    machine.sanitizer_inject_accounting_skew();
    // ...but any imbalance fails the drain check.
    assert_eq!(machine.conservation_violations(true).len(), 1);
}
