//! Property-style corruption tests for the journal readers.
//!
//! A write-ahead journal's failure mode is not "clean file or no file" —
//! it is torn tails, bit rot, duplicated appends from a crashed retry,
//! and editor accidents. These tests machine-generate those corruptions
//! from a seeded in-test RNG and pin the contract on both readers:
//!
//! * [`barre_system::read_journal`] (strict, sweep resume): never
//!   panics — every corruption maps to `Ok` (tolerated torn tail) or
//!   `Err(Malformed)`, nothing else.
//! * [`barre_system::read_journal_lenient`] + [`verified_done_index`]
//!   (the serve cache loader): never errors on corrupt *content*,
//!   skips-and-counts bad lines, and never yields a `done` record whose
//!   digest fails verification — a digest-failing record must be
//!   dropped, not served.

use std::path::PathBuf;

use barre_system::{
    metrics_digest, metrics_hist_digest, read_journal, read_journal_lenient, verified_done_index,
    JournalError, JournalEvent, JournalRecord, JournalWriter, RunMetrics,
};

/// Deterministic split-mix style generator so every corruption is
/// reproducible from its seed — no ambient entropy in tests either.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn metrics(cycles: u64) -> RunMetrics {
    let mut m = RunMetrics {
        total_cycles: cycles,
        walks: cycles / 10,
        ..Default::default()
    };
    m.ats_latency.record(cycles);
    m.ats_latency.record(cycles / 2 + 1);
    m.vpn_gap.record(3);
    m
}

/// Writes a clean journal of `n` jobs (start + done each) and returns
/// its bytes.
fn clean_journal(dir: &std::path::Path, n: usize) -> Vec<u8> {
    let path = dir.join("journal.jsonl");
    let writer = JournalWriter::open(&path).expect("open journal");
    for i in 0..n {
        let fp = format!("fp{i:02}");
        let label = format!("app{i}/barre");
        writer
            .append(&JournalRecord {
                fingerprint: fp.clone(),
                label: label.clone(),
                event: JournalEvent::Start { attempt: 1 },
            })
            .expect("start");
        let m = Box::new(metrics(100 + i as u64 * 37));
        writer
            .append(&JournalRecord {
                fingerprint: fp,
                label,
                event: JournalEvent::Done {
                    attempts: 1,
                    exit: "ok".to_string(),
                    digest: metrics_digest(&m),
                    hist_digest: Some(metrics_hist_digest(&m)),
                    worker: None,
                    metrics: m,
                },
            })
            .expect("done");
    }
    std::fs::read(&path).expect("read back")
}

/// One seeded corruption of a clean journal body.
fn corrupt(rng: &mut Rng, clean: &[u8]) -> Vec<u8> {
    let mut bytes = clean.to_vec();
    match rng.below(4) {
        // Torn tail / mid-file truncation at an arbitrary byte.
        0 => {
            let cut = rng.below(bytes.len());
            bytes.truncate(cut);
        }
        // Single bit flip anywhere (steering clear of flipping a byte
        // into `\n`, which would just split a line).
        1 => {
            let at = rng.below(bytes.len());
            let bit = 1u8 << rng.below(8);
            if bytes[at] ^ bit != b'\n' && bytes[at] != b'\n' {
                bytes[at] ^= bit;
            } else {
                bytes[at] = b'#';
            }
        }
        // Duplicate one whole line mid-file (a crashed retry re-append).
        2 => {
            let lines: Vec<&[u8]> = clean.split(|&b| b == b'\n').collect();
            let pick = rng.below(lines.len().saturating_sub(1));
            let insert_at = rng.below(lines.len().saturating_sub(1));
            let mut out = Vec::with_capacity(bytes.len() * 2);
            for (i, line) in lines.iter().enumerate() {
                if line.is_empty() {
                    continue;
                }
                out.extend_from_slice(line);
                out.push(b'\n');
                if i == insert_at {
                    out.extend_from_slice(lines[pick]);
                    out.push(b'\n');
                }
            }
            bytes = out;
        }
        // Splice a garbage line into the middle.
        _ => {
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| (b == b'\n').then_some(i))
                .collect();
            let at = newlines[rng.below(newlines.len())] + 1;
            let garbage: &[u8] = match rng.below(3) {
                0 => b"{\"event\":\"done\",\"finge\n",
                1 => b"!!! NOT JSON !!!\n",
                _ => b"{\"event\":\"unknown\",\"fingerprint\":\"x\",\"label\":\"y\"}\n",
            };
            bytes.splice(at..at, garbage.iter().copied());
        }
    }
    bytes
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("barre-jcorrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn corrupted_journals_never_panic_and_never_serve_bad_digests() {
    let dir = tmpdir("prop");
    let clean = clean_journal(&dir, 6);
    let path = dir.join("corrupt.jsonl");
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let bytes = corrupt(&mut rng, &clean);
        std::fs::write(&path, &bytes).expect("write corrupt");

        // Strict reader: Ok (torn-tail tolerated), Malformed (interior
        // corruption), or Io (bit rot broke UTF-8) — it must classify,
        // not crash.
        match read_journal(&path) {
            Ok(_) | Err(JournalError::Malformed { .. }) | Err(JournalError::Io(_)) => {}
            Err(other) => panic!("seed {seed}: unexpected strict error {other}"),
        }

        // Lenient reader: corruption is never an error, only skips.
        let (records, _skipped) =
            read_journal_lenient(&path).unwrap_or_else(|e| panic!("seed {seed}: lenient {e}"));

        // The cache loader must keep only digest-true done records.
        let (index, _dropped) = verified_done_index(&records);
        for rec in index.values() {
            match &rec.event {
                JournalEvent::Done {
                    digest,
                    hist_digest,
                    metrics,
                    ..
                } => {
                    assert_eq!(
                        *digest,
                        metrics_digest(metrics),
                        "seed {seed}: served a digest-failing record"
                    );
                    if let Some(h) = hist_digest {
                        assert_eq!(
                            *h,
                            metrics_hist_digest(metrics),
                            "seed {seed}: served a hist-digest-failing record"
                        );
                    }
                }
                other => panic!("seed {seed}: non-done record in done index: {other:?}"),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicated_done_records_resolve_last_wins_without_error() {
    let dir = tmpdir("dup");
    let clean = clean_journal(&dir, 3);
    let text = String::from_utf8(clean).expect("utf8");
    // Re-append every done line once more, mid-file and at the end.
    let done_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"event\":\"done\""))
        .collect();
    let mut doubled = text.clone();
    for l in &done_lines {
        doubled.push_str(l);
        doubled.push('\n');
    }
    let path = dir.join("doubled.jsonl");
    std::fs::write(&path, &doubled).expect("write");
    let (records, skipped) = read_journal_lenient(&path).expect("lenient");
    assert_eq!(skipped, 0);
    let (index, dropped) = verified_done_index(&records);
    assert_eq!(dropped, 0);
    assert_eq!(
        index.len(),
        3,
        "one entry per fingerprint, duplicates folded"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bitflipped_metrics_are_dropped_from_the_verified_index() {
    let dir = tmpdir("flip");
    let clean = clean_journal(&dir, 2);
    let text = String::from_utf8(clean).expect("utf8");
    // Corrupt fp00's recorded cycles: still valid JSON, digest now lies.
    let flipped = text.replace("\"total_cycles\":100,", "\"total_cycles\":104,");
    assert_ne!(text, flipped, "corruption must land");
    let path = dir.join("flipped.jsonl");
    std::fs::write(&path, &flipped).expect("write");
    let (records, skipped) = read_journal_lenient(&path).expect("lenient");
    assert_eq!(skipped, 0, "the line still parses");
    let (index, dropped) = verified_done_index(&records);
    assert_eq!(dropped, 1, "digest mismatch must be dropped");
    assert!(!index.contains_key("fp00"));
    assert!(index.contains_key("fp01"));
    let _ = std::fs::remove_dir_all(&dir);
}
