//! Property-style tests for the shard-merge contract.
//!
//! `barre merge` (and the dispatch client behind `--dispatch`) promise
//! that folding per-shard journals is a *function of the records*, not
//! of the accidents of how they arrived: shard order, record order
//! inside a shard, and crash-retry duplication must not change the
//! merged result, and a genuine digest conflict must be detected no
//! matter where in the pile it hides. These tests machine-generate
//! shard layouts from a seeded RNG and pin those properties on
//! [`barre_system::merge_journals`] and
//! [`barre_system::verified_done_index`].

use std::collections::BTreeMap;

use barre_system::{
    merge_journals, metrics_digest, metrics_hist_digest, verified_done_index, JournalError,
    JournalEvent, JournalRecord, RunMetrics,
};

/// Deterministic split-mix style generator so every layout is
/// reproducible from its seed — no ambient entropy in tests either.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

fn metrics(cycles: u64) -> RunMetrics {
    let mut m = RunMetrics {
        total_cycles: cycles,
        walks: cycles / 10,
        ..Default::default()
    };
    m.ats_latency.record(cycles);
    m.vpn_gap.record(3);
    m
}

fn done(fp: &str, cycles: u64, worker: Option<&str>) -> JournalRecord {
    let m = Box::new(metrics(cycles));
    JournalRecord {
        fingerprint: fp.to_string(),
        label: format!("{fp}/barre"),
        event: JournalEvent::Done {
            attempts: 1,
            exit: "ok".to_string(),
            digest: metrics_digest(&m),
            hist_digest: Some(metrics_hist_digest(&m)),
            worker: worker.map(str::to_string),
            metrics: m,
        },
    }
}

fn failed(fp: &str) -> JournalRecord {
    JournalRecord {
        fingerprint: fp.to_string(),
        label: format!("{fp}/barre"),
        event: JournalEvent::Failed {
            attempts: 3,
            exit: "signal:9".to_string(),
            dump: None,
        },
    }
}

fn quarantined(fp: &str) -> JournalRecord {
    JournalRecord {
        fingerprint: fp.to_string(),
        label: format!("{fp}/barre"),
        event: JournalEvent::Quarantined {
            leases: 3,
            exit: "lease-expired".to_string(),
        },
    }
}

fn noise(fp: &str, which: usize) -> JournalRecord {
    let event = match which % 3 {
        0 => JournalEvent::Start { attempt: 1 },
        1 => JournalEvent::Queued {
            args: vec!["run".to_string(), "--app".to_string(), fp.to_string()],
        },
        _ => JournalEvent::Leased {
            worker: "w0".to_string(),
            lease: 1,
        },
    };
    JournalRecord {
        fingerprint: fp.to_string(),
        label: format!("{fp}/barre"),
        event,
    }
}

/// The canonical view order-independence is asserted on: fingerprint →
/// serialized terminal record.
fn by_fingerprint(merged: &[JournalRecord]) -> BTreeMap<String, String> {
    merged
        .iter()
        .map(|r| (r.fingerprint.clone(), r.to_line()))
        .collect()
}

/// One seeded universe: `n` jobs, each with exactly one terminal
/// outcome (done / failed / quarantined — done jobs may also carry a
/// superseded failure), scattered over `k` shards with duplication and
/// non-terminal noise.
fn build_shards(
    rng: &mut Rng,
    n: usize,
    k: usize,
) -> (Vec<Vec<JournalRecord>>, BTreeMap<String, String>) {
    let mut records: Vec<JournalRecord> = Vec::new();
    let mut expect_kind: BTreeMap<String, String> = BTreeMap::new();
    for i in 0..n {
        let fp = format!("fp{i:02}");
        records.push(noise(&fp, rng.below(3)));
        match rng.below(4) {
            // Clean completion, possibly stamped by different workers on
            // duplicated shards — digests agree, so dups are benign.
            0 | 1 => {
                records.push(done(&fp, 100 + i as u64 * 37, Some("w1")));
                expect_kind.insert(fp, "done".to_string());
            }
            2 => {
                // A failure that a later (or earlier — order must not
                // matter) completion displaces.
                records.push(failed(&fp));
                if rng.below(2) == 0 {
                    records.push(done(&fp, 100 + i as u64 * 37, Some("w2")));
                    expect_kind.insert(fp, "done".to_string());
                } else {
                    expect_kind.insert(fp, "failed".to_string());
                }
            }
            _ => {
                records.push(quarantined(&fp));
                expect_kind.insert(fp, "quarantined".to_string());
            }
        }
    }
    // Crash-retry duplication: re-append a random slice of the records.
    let dup_from = rng.below(records.len());
    let dups: Vec<JournalRecord> = records[dup_from..].to_vec();
    records.extend(dups);
    rng.shuffle(&mut records);
    // Deal the records round-robin-ish into shards.
    let mut shards: Vec<Vec<JournalRecord>> = vec![Vec::new(); k];
    for rec in records {
        let at = rng.below(k);
        shards[at].push(rec);
    }
    (shards, expect_kind)
}

fn kind(rec: &JournalRecord) -> &'static str {
    match rec.event {
        JournalEvent::Done { .. } => "done",
        JournalEvent::Failed { .. } => "failed",
        JournalEvent::Quarantined { .. } => "quarantined",
        _ => "non-terminal",
    }
}

#[test]
fn merge_is_independent_of_shard_and_record_order() {
    for seed in 0..24u64 {
        let mut rng = Rng(seed);
        let (shards, expect_kind) = build_shards(&mut rng, 12, 4);
        let baseline = merge_journals(&shards).expect("merge clean shards");
        assert_eq!(
            baseline.len(),
            expect_kind.len(),
            "seed {seed}: every job must surface exactly once"
        );
        for rec in &baseline {
            assert_eq!(
                expect_kind.get(&rec.fingerprint).map(String::as_str),
                Some(kind(rec)),
                "seed {seed}: wrong terminal kind for {}",
                rec.fingerprint
            );
        }
        let canon = by_fingerprint(&baseline);
        for round in 0..6 {
            let mut shuffled = shards.clone();
            rng.shuffle(&mut shuffled);
            for shard in &mut shuffled {
                rng.shuffle(shard);
            }
            let merged = merge_journals(&shuffled).expect("merge shuffled shards");
            assert_eq!(
                by_fingerprint(&merged),
                canon,
                "seed {seed} round {round}: merge changed under reordering"
            );
        }
    }
}

#[test]
fn duplicated_shards_change_nothing() {
    for seed in 100..112u64 {
        let mut rng = Rng(seed);
        let (shards, _) = build_shards(&mut rng, 10, 3);
        let canon = by_fingerprint(&merge_journals(&shards).expect("merge"));
        // The whole pile again, twice — idempotent ingest.
        let mut doubled = shards.clone();
        doubled.extend(shards.clone());
        assert_eq!(
            by_fingerprint(&merge_journals(&doubled).expect("merge doubled")),
            canon,
            "seed {seed}: duplicated shards altered the merge"
        );
    }
}

#[test]
fn injected_conflicts_are_detected_in_every_order() {
    for seed in 200..212u64 {
        let mut rng = Rng(seed);
        let (mut shards, expect_kind) = build_shards(&mut rng, 10, 3);
        // Pick a job that completed and plant a second completion with
        // different metrics (hence a different digest) somewhere else.
        let Some(victim) = expect_kind
            .iter()
            .find(|(_, k)| k.as_str() == "done")
            .map(|(fp, _)| fp.clone())
        else {
            continue;
        };
        let at = rng.below(shards.len());
        shards[at].push(done(&victim, 999_999, Some("w-evil")));
        for round in 0..4 {
            let mut shuffled = shards.clone();
            rng.shuffle(&mut shuffled);
            for shard in &mut shuffled {
                rng.shuffle(shard);
            }
            match merge_journals(&shuffled) {
                Err(JournalError::Conflict { fingerprint, .. }) => assert_eq!(
                    fingerprint, victim,
                    "seed {seed} round {round}: conflict blamed the wrong job"
                ),
                Ok(_) => panic!("seed {seed} round {round}: conflict slipped through"),
                Err(other) => panic!("seed {seed} round {round}: wrong error {other}"),
            }
        }
    }
}

#[test]
fn verified_done_index_is_order_independent_and_drops_corruption() {
    for seed in 300..312u64 {
        let mut rng = Rng(seed);
        let (shards, _) = build_shards(&mut rng, 12, 4);
        let mut flat: Vec<JournalRecord> = shards.into_iter().flatten().collect();
        // Plant a digest-corrupt completion: parseable, verifiably wrong.
        let mut rotten = done("fp-rotten", 123, None);
        if let JournalEvent::Done { digest, .. } = &mut rotten.event {
            *digest = "0000000000000000".to_string();
        }
        flat.push(rotten);
        let (index, dropped) = verified_done_index(&flat);
        assert!(dropped >= 1, "seed {seed}: corrupt record not counted");
        assert!(
            !index.contains_key("fp-rotten"),
            "seed {seed}: corrupt record served"
        );
        let canon: BTreeMap<String, String> = index
            .iter()
            .map(|(fp, rec)| (fp.clone(), rec.to_line()))
            .collect();
        for round in 0..6 {
            rng.shuffle(&mut flat);
            let (again, _) = verified_done_index(&flat);
            let view: BTreeMap<String, String> = again
                .iter()
                .map(|(fp, rec)| (fp.clone(), rec.to_line()))
                .collect();
            assert_eq!(
                view, canon,
                "seed {seed} round {round}: index changed under reordering"
            );
        }
    }
}
