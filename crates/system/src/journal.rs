//! The write-ahead run journal behind `barre sweep --resume` and
//! `barre merge`.
//!
//! A supervised sweep appends one record per job transition to an
//! append-only JSONL file (`sweep.journal.jsonl`): a `start` record
//! *before* each attempt is dispatched (the write-ahead part), then a
//! terminal `done` or `failed` record carrying the attempt count, exit
//! status, a fingerprint identifying the job spec, and — for `done` —
//! the full [`RunMetrics`] plus a digest over their canonical JSON
//! encoding. Because the metrics round-trip exactly (every counter and
//! both histograms), a resumed sweep renders output byte-identical to an
//! uninterrupted run, and `barre merge` can fold per-shard journals into
//! one trajectory while detecting digest conflicts.
//!
//! Everything here is hand-rolled (including the minimal JSON reader) so
//! the workspace keeps its zero-dependency, offline build.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use barre_sim::Histogram;

use crate::metrics::RunMetrics;

/// Default file name of the journal inside a journal directory.
pub const JOURNAL_FILE: &str = "sweep.journal.jsonl";

/// Why a journal could not be read, parsed, or written.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure (open/append/flush/read).
    Io(String),
    /// A record line that is not valid journal JSON. Carries the 1-based
    /// line number. A malformed *final* line is tolerated by
    /// [`read_journal`] (a crash mid-append truncates exactly there);
    /// malformed interior lines are corruption and surface as this.
    Malformed {
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong with it.
        why: String,
    },
    /// Two shards carry `done` records for the same fingerprint with
    /// different metrics digests — the shards were produced by different
    /// binaries/configs and must not be merged silently.
    Conflict {
        /// Job fingerprint both shards claim to have completed.
        fingerprint: String,
        /// Human label of the conflicting job.
        label: String,
        /// Digest recorded by the first shard.
        digest_a: String,
        /// Digest recorded by the second shard.
        digest_b: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Malformed { line, why } => {
                write!(f, "malformed journal record at line {line}: {why}")
            }
            JournalError::Conflict {
                fingerprint,
                label,
                digest_a,
                digest_b,
            } => write!(
                f,
                "merge conflict on {label} ({fingerprint}): digests {digest_a} != {digest_b}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON value reader
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their source text so 64-bit (and
/// the histogram-sum 128-bit) integers round-trip exactly — `f64` would
/// silently lose precision above 2^53 and break the byte-identity the
/// journal exists to guarantee. Objects preserve key order in a `Vec`
/// (no hash maps in sim-facing crates).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (ignoring surrounding whitespace).
    ///
    /// # Errors
    ///
    /// A `String` describing the first syntax error, with a byte offset.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut i = 0usize;
        let v = parse_value(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if i != bytes.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(v)
    }

    /// The value under `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact `u64`, when `self` is an integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as an exact `u128`, when `self` is an integer number.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, when `self` is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, when `self` is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while let Some(c) = bytes.get(*i) {
        if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, i);
    match bytes.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, i),
        Some(b'[') => parse_arr(bytes, i),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, i)?)),
        Some(b't') => parse_lit(bytes, i, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, i, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, i, "null", Json::Null),
        Some(_) => parse_num(bytes, i),
    }
}

fn parse_lit(bytes: &[u8], i: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    let rest = bytes.get(*i..).unwrap_or_default();
    if rest.starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_num(bytes: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if bytes.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while bytes
        .get(*i)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    let text =
        std::str::from_utf8(bytes.get(start..*i).unwrap_or_default()).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    Ok(Json::Num(text.to_string()))
}

fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
    // Caller saw the opening quote.
    *i += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*i) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match bytes.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged; find
                // the char boundary via the original str slice.
                let tail = std::str::from_utf8(bytes.get(*i..).unwrap_or_default())
                    .map_err(|e| e.to_string())?;
                let Some(c) = tail.chars().next() else {
                    return Err("unterminated string".to_string());
                };
                out.push(c);
                *i += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, i);
    if bytes.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, i)?);
        skip_ws(bytes, i);
        match bytes.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {i}")),
        }
    }
}

fn parse_obj(bytes: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // {
    let mut pairs = Vec::new();
    skip_ws(bytes, i);
    if bytes.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, i);
        if bytes.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        let key = parse_string(bytes, i)?;
        skip_ws(bytes, i);
        if bytes.get(*i) != Some(&b':') {
            return Err(format!("expected : at byte {i}"));
        }
        *i += 1;
        let value = parse_value(bytes, i)?;
        pairs.push((key, value));
        skip_ws(bytes, i);
        match bytes.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected , or }} at byte {i}")),
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Fingerprints and digests
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a over `bytes` — the journal's stable, dependency-free
/// hash for job fingerprints and metrics digests.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes an ordered list of string parts (length-prefixed so `["ab",
/// "c"]` and `["a", "bc"]` differ) into a 16-hex-digit fingerprint.
pub fn fingerprint(parts: &[&str]) -> String {
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(&(p.len() as u64).to_le_bytes());
        buf.extend_from_slice(p.as_bytes());
    }
    format!("{:016x}", fnv64(&buf))
}

/// Digest of a run's metrics: FNV-1a over the canonical JSON encoding.
/// Two runs with equal digests produced byte-identical [`RunMetrics`].
pub fn metrics_digest(m: &RunMetrics) -> String {
    format!("{:016x}", fnv64(metrics_to_json(m).as_bytes()))
}

/// Digest of a run's latency-shape evidence: FNV-1a over the canonical
/// JSON of the ATS-latency and VPN-gap histograms only. Two runs with
/// equal hist digests saw identical latency/locality *distributions*,
/// even if scalar counters differ — the signal `barre report` uses to
/// spot drift between sweep shards.
pub fn metrics_hist_digest(m: &RunMetrics) -> String {
    let evidence = format!(
        "{}|{}",
        histogram_to_json(&m.ats_latency),
        histogram_to_json(&m.vpn_gap)
    );
    format!("{:016x}", fnv64(evidence.as_bytes()))
}

// ---------------------------------------------------------------------------
// RunMetrics <-> JSON
// ---------------------------------------------------------------------------

fn histogram_to_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h.raw_buckets().iter().map(u64::to_string).collect();
    format!(
        "{{\"buckets\":[{}],\"count\":{},\"sum\":{},\"max\":{}}}",
        buckets.join(","),
        h.count(),
        h.sum(),
        h.max()
    )
}

fn histogram_from_json(v: &Json) -> Result<Histogram, String> {
    let buckets = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets")?
        .iter()
        .map(|b| b.as_u64().ok_or("non-integer bucket"))
        .collect::<Result<Vec<u64>, _>>()?;
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("histogram missing count")?;
    let sum = v
        .get("sum")
        .and_then(Json::as_u128)
        .ok_or("histogram missing sum")?;
    let max = v
        .get("max")
        .and_then(Json::as_u64)
        .ok_or("histogram missing max")?;
    Ok(Histogram::from_raw(buckets, count, sum, max))
}

/// Every `u64` counter field of [`RunMetrics`], in struct order, as
/// `(name, getter)` — the single source of truth both serialization
/// directions share.
macro_rules! metrics_u64_fields {
    ($m:ident, $f:ident) => {
        $f!($m, total_cycles);
        $f!($m, warp_instructions);
        $f!($m, warp_mem_instructions);
        $f!($m, l1_tlb_lookups);
        $f!($m, l1_tlb_misses);
        $f!($m, l2_tlb_lookups);
        $f!($m, l2_tlb_misses);
        $f!($m, ats_requests);
        $f!($m, walks);
        $f!($m, coalesced_translations);
        $f!($m, intra_mcm_translations);
        $f!($m, lcf_translations);
        $f!($m, peer_probes);
        $f!($m, peer_probe_nacks);
        $f!($m, l1_peer_hits);
        $f!($m, prefetches);
        $f!($m, filter_updates_sent);
        $f!($m, filter_updates_dropped);
        $f!($m, remote_data_accesses);
        $f!($m, data_accesses);
        $f!($m, migrations);
        $f!($m, page_faults);
        $f!($m, demand_pages_mapped);
        $f!($m, gmmu_remote_walks);
        $f!($m, gmmu_local_walks);
        $f!($m, pcie_bytes);
        $f!($m, mesh_bytes);
        $f!($m, ptw_busy_cycles);
        $f!($m, pw_queue_rejections);
        $f!($m, rcf_remote_attempts);
        $f!($m, rcf_remote_hits);
        $f!($m, lcf_true_hits);
        $f!($m, lcf_hits);
        $f!($m, faults_injected);
        $f!($m, ats_retries);
        $f!($m, ats_timeouts);
        $f!($m, fallback_translations);
        $f!($m, watchdog_fired);
        $f!($m, events_processed);
    };
}

/// Renders a run's metrics as one line of canonical JSON — fixed field
/// order, no whitespace — so equal metrics always produce equal bytes
/// (the property [`metrics_digest`] relies on).
pub fn metrics_to_json(m: &RunMetrics) -> String {
    let mut s = String::with_capacity(1024);
    s.push('{');
    macro_rules! emit {
        ($m:ident, $field:ident) => {
            s.push_str(&format!("\"{}\":{},", stringify!($field), $m.$field));
        };
    }
    metrics_u64_fields!(m, emit);
    s.push_str(&format!(
        "\"ats_latency\":{},",
        histogram_to_json(&m.ats_latency)
    ));
    s.push_str(&format!("\"vpn_gap\":{}", histogram_to_json(&m.vpn_gap)));
    s.push('}');
    s
}

/// Parses metrics previously rendered by [`metrics_to_json`]. Strict:
/// every field must be present with the right type, so a journal written
/// by a binary with a different `RunMetrics` shape is rejected rather
/// than silently zero-filled.
///
/// # Errors
///
/// A description of the first missing or ill-typed field.
pub fn metrics_from_json(src: &str) -> Result<RunMetrics, String> {
    let v = Json::parse(src)?;
    metrics_from_value(&v)
}

/// [`metrics_from_json`] on an already-parsed [`Json`] value.
///
/// # Errors
///
/// A description of the first missing or ill-typed field.
pub fn metrics_from_value(v: &Json) -> Result<RunMetrics, String> {
    let mut m = RunMetrics::default();
    macro_rules! take {
        ($m:ident, $field:ident) => {
            $m.$field = v
                .get(stringify!($field))
                .and_then(Json::as_u64)
                .ok_or(concat!("missing or non-integer field ", stringify!($field)))?;
        };
    }
    metrics_u64_fields!(m, take);
    m.ats_latency = histogram_from_json(v.get("ats_latency").ok_or("missing ats_latency")?)?;
    m.vpn_gap = histogram_from_json(v.get("vpn_gap").ok_or("missing vpn_gap")?)?;
    // Completeness guard: a field added to RunMetrics without updating
    // `metrics_u64_fields!` would round-trip as zero and silently break
    // resume byte-identity. Destructuring without `..` turns that drift
    // into a compile error instead.
    let RunMetrics {
        total_cycles: _,
        warp_instructions: _,
        warp_mem_instructions: _,
        l1_tlb_lookups: _,
        l1_tlb_misses: _,
        l2_tlb_lookups: _,
        l2_tlb_misses: _,
        ats_requests: _,
        walks: _,
        coalesced_translations: _,
        intra_mcm_translations: _,
        lcf_translations: _,
        peer_probes: _,
        peer_probe_nacks: _,
        l1_peer_hits: _,
        prefetches: _,
        filter_updates_sent: _,
        filter_updates_dropped: _,
        remote_data_accesses: _,
        data_accesses: _,
        migrations: _,
        page_faults: _,
        demand_pages_mapped: _,
        gmmu_remote_walks: _,
        gmmu_local_walks: _,
        ats_latency: _,
        vpn_gap: _,
        pcie_bytes: _,
        mesh_bytes: _,
        ptw_busy_cycles: _,
        pw_queue_rejections: _,
        rcf_remote_attempts: _,
        rcf_remote_hits: _,
        lcf_true_hits: _,
        lcf_hits: _,
        faults_injected: _,
        ats_retries: _,
        ats_timeouts: _,
        fallback_translations: _,
        watchdog_fired: _,
        events_processed: _,
    } = &m;
    Ok(m)
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

/// What happened to a job, as recorded in the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// Appended *before* an attempt is dispatched (write-ahead): if the
    /// supervisor dies here, resume sees an unfinished job and reruns it.
    Start {
        /// 1-based attempt number about to run.
        attempt: u32,
    },
    /// The job completed; its metrics are stored for replay.
    Done {
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
        /// Exit status of the successful attempt (normally `"ok"`).
        exit: String,
        /// [`metrics_digest`] of `metrics`.
        digest: String,
        /// [`metrics_hist_digest`] of `metrics` — latency/locality
        /// distribution fingerprint. `None` on records written by
        /// older supervisors; readers must tolerate its absence.
        hist_digest: Option<String>,
        /// Identity of the worker (queue worker name, or
        /// `$BARRE_WORKER_ID` for supervised sweeps) that produced the
        /// result. `None` on records written by older binaries or
        /// unattributed runs; readers must tolerate its absence —
        /// the same migration contract as `hist_digest`.
        worker: Option<String>,
        /// The run's full metrics.
        metrics: Box<RunMetrics>,
    },
    /// The job exhausted its retries (or failed permanently).
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// Exit status of the last attempt (`"exit:N"`, `"signal:N"`,
        /// `"timeout"`, `"spawn:…"`).
        exit: String,
        /// Path of the per-job state-dump file, when one was written
        /// (watchdog fire, timeout, or any captured crash output).
        dump: Option<String>,
    },
    /// The job was accepted by a queue coordinator (write-ahead: the
    /// full child argv is stored so a restarted coordinator can rebuild
    /// the job list from its journal alone).
    Queued {
        /// Child argv to execute (includes `--job-index`).
        args: Vec<String>,
    },
    /// A queue coordinator granted a time-bounded lease on the job.
    Leased {
        /// Name of the worker holding the lease.
        worker: String,
        /// 1-based lease number (how many leases this job has consumed,
        /// including this one).
        lease: u32,
    },
    /// The job burned through the coordinator's lease budget and was
    /// quarantined as a poison job — reported, never retried again.
    Quarantined {
        /// Leases consumed before quarantine.
        leases: u32,
        /// Exit status of the last observed attempt (`"timeout"`,
        /// `"signal:N"`, `"lease-expired"`, …).
        exit: String,
    },
}

/// One journal line: which job, and what happened to it.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Stable identity of the job spec ([`fingerprint`] over the child
    /// command line, job index, and label).
    pub fingerprint: String,
    /// Human-readable job label (`"gups/fbarre"`, `"gups/drop=0.01"`).
    pub label: String,
    /// The transition being recorded.
    pub event: JournalEvent,
}

impl JournalRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let head = format!(
            "\"fingerprint\":{},\"label\":{}",
            json_escape(&self.fingerprint),
            json_escape(&self.label)
        );
        match &self.event {
            JournalEvent::Start { attempt } => {
                format!("{{\"event\":\"start\",{head},\"attempt\":{attempt}}}")
            }
            JournalEvent::Done {
                attempts,
                exit,
                digest,
                hist_digest,
                worker,
                metrics,
            } => {
                let hist = match hist_digest {
                    Some(h) => format!(",\"hist_digest\":{}", json_escape(h)),
                    None => String::new(),
                };
                let who = match worker {
                    Some(w) => format!(",\"worker\":{}", json_escape(w)),
                    None => String::new(),
                };
                format!(
                    "{{\"event\":\"done\",{head},\"attempts\":{attempts},\"exit\":{},\"digest\":{}{hist}{who},\"metrics\":{}}}",
                    json_escape(exit),
                    json_escape(digest),
                    metrics_to_json(metrics)
                )
            }
            JournalEvent::Failed {
                attempts,
                exit,
                dump,
            } => {
                let dump = match dump {
                    Some(p) => format!(",\"dump\":{}", json_escape(p)),
                    None => String::new(),
                };
                format!(
                    "{{\"event\":\"failed\",{head},\"attempts\":{attempts},\"exit\":{}{dump}}}",
                    json_escape(exit)
                )
            }
            JournalEvent::Queued { args } => {
                let args: Vec<String> = args.iter().map(|a| json_escape(a)).collect();
                format!(
                    "{{\"event\":\"queued\",{head},\"args\":[{}]}}",
                    args.join(",")
                )
            }
            JournalEvent::Leased { worker, lease } => {
                format!(
                    "{{\"event\":\"leased\",{head},\"worker\":{},\"lease\":{lease}}}",
                    json_escape(worker)
                )
            }
            JournalEvent::Quarantined { leases, exit } => {
                format!(
                    "{{\"event\":\"quarantined\",{head},\"leases\":{leases},\"exit\":{}}}",
                    json_escape(exit)
                )
            }
        }
    }

    /// Parses one JSONL line back into a record.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem.
    pub fn from_line(line: &str) -> Result<JournalRecord, String> {
        let v = Json::parse(line)?;
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {k}"))
        };
        let attempts = |k: &str| -> Result<u32, String> {
            let n = v
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {k}"))?;
            u32::try_from(n).map_err(|_| format!("field {k} out of range"))
        };
        let fingerprint = field("fingerprint")?;
        let label = field("label")?;
        let event = match field("event")?.as_str() {
            "start" => JournalEvent::Start {
                attempt: attempts("attempt")?,
            },
            "done" => JournalEvent::Done {
                attempts: attempts("attempts")?,
                exit: field("exit")?,
                digest: field("digest")?,
                hist_digest: v
                    .get("hist_digest")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                worker: v.get("worker").and_then(Json::as_str).map(str::to_string),
                metrics: Box::new(metrics_from_value(
                    v.get("metrics").ok_or("missing metrics")?,
                )?),
            },
            "failed" => JournalEvent::Failed {
                attempts: attempts("attempts")?,
                exit: field("exit")?,
                dump: v.get("dump").and_then(Json::as_str).map(str::to_string),
            },
            "queued" => JournalEvent::Queued {
                args: v
                    .get("args")
                    .and_then(Json::as_arr)
                    .ok_or("missing field args")?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "non-string queued arg".to_string())
                    })
                    .collect::<Result<Vec<String>, String>>()?,
            },
            "leased" => JournalEvent::Leased {
                worker: field("worker")?,
                lease: attempts("lease")?,
            },
            "quarantined" => JournalEvent::Quarantined {
                leases: attempts("leases")?,
                exit: field("exit")?,
            },
            other => return Err(format!("unknown event {other}")),
        };
        Ok(JournalRecord {
            fingerprint,
            label,
            event,
        })
    }
}

/// An append-only journal file handle, safe to share across the
/// supervisor's worker threads. Every append flushes, so a record is on
/// disk before the result it describes is consumed.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<fs::File>,
}

impl JournalWriter {
    /// Opens (creating or appending to) the journal at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be opened.
    pub fn open(path: &Path) -> Result<JournalWriter, JournalError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JournalWriter {
            file: Mutex::new(file),
        })
    }

    /// Appends one record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the write or flush fails.
    pub fn append(&self, rec: &JournalRecord) -> Result<(), JournalError> {
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        writeln!(f, "{}", rec.to_line())?;
        f.flush()?;
        Ok(())
    }
}

/// Reads every record of the journal at `path`, in file order.
///
/// A malformed or truncated *final* line is tolerated and dropped — that
/// is exactly the state a crash mid-append leaves behind, and the
/// write-ahead discipline means the dropped record described work that
/// will simply be redone. Malformed interior lines are corruption and
/// error out.
///
/// # Errors
///
/// [`JournalError::Io`] / [`JournalError::Malformed`].
pub fn read_journal(path: &Path) -> Result<Vec<JournalRecord>, JournalError> {
    let text = fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (idx, line) in lines.iter().enumerate() {
        match JournalRecord::from_line(line) {
            Ok(rec) => out.push(rec),
            Err(why) if idx + 1 == lines.len() => {
                // Torn tail from a crash mid-append; resume redoes it.
                let _ = why;
            }
            Err(why) => return Err(JournalError::Malformed { line: idx + 1, why }),
        }
    }
    Ok(out)
}

/// Reads the journal at `path` *leniently*: malformed lines anywhere in
/// the file are skipped (and counted) instead of erroring out.
///
/// This is the corruption-tolerant reader behind the `barre serve`
/// cache-index loader, where the right response to a damaged record is
/// to drop it and recompute — the strict [`read_journal`] stays the
/// right tool for `--resume`/`merge`, where interior corruption must
/// surface rather than silently shrink a campaign.
///
/// # Errors
///
/// [`JournalError::Io`] only; parse failures never error. Even invalid
/// UTF-8 (bit rot inside a record) is decoded lossily so the damage
/// stays confined to the lines it touched.
pub fn read_journal_lenient(path: &Path) -> Result<(Vec<JournalRecord>, usize), JournalError> {
    let bytes = fs::read(path)?;
    let text = String::from_utf8_lossy(&bytes);
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match JournalRecord::from_line(line) {
            Ok(rec) => out.push(rec),
            Err(_) => skipped = skipped.saturating_add(1),
        }
    }
    Ok((out, skipped))
}

/// Folds records into a digest-*verified* completed index: fingerprint →
/// last `Done` record whose stored `digest` (and `hist_digest`, when
/// present) matches recomputation over its own metrics. Records that
/// fail verification are dropped and counted — a parseable line whose
/// digests disagree with its payload is bit-rot, and serving it would
/// break the byte-identity the cache promises.
pub fn verified_done_index(records: &[JournalRecord]) -> (BTreeMap<String, JournalRecord>, usize) {
    let mut index = BTreeMap::new();
    let mut dropped = 0usize;
    for rec in records {
        if let JournalEvent::Done {
            digest,
            hist_digest,
            metrics,
            ..
        } = &rec.event
        {
            let digest_ok = *digest == metrics_digest(metrics);
            let hist_ok = match hist_digest {
                Some(h) => *h == metrics_hist_digest(metrics),
                None => true,
            };
            if digest_ok && hist_ok {
                index.insert(rec.fingerprint.clone(), rec.clone());
            } else {
                dropped = dropped.saturating_add(1);
            }
        }
    }
    (index, dropped)
}

/// Folds journal records into the completed-work index used by
/// `--resume`: fingerprint → final `Done` record (the last one wins, so
/// re-running a shard is idempotent).
pub fn completed_index(records: &[JournalRecord]) -> BTreeMap<String, JournalRecord> {
    let mut index = BTreeMap::new();
    for rec in records {
        if matches!(rec.event, JournalEvent::Done { .. }) {
            index.insert(rec.fingerprint.clone(), rec.clone());
        }
    }
    index
}

/// Merges per-shard journals into one: the union of terminal records,
/// first-seen order, `done` preferred over `failed`/`quarantined` for
/// the same fingerprint. Non-terminal records (`start`, `queued`,
/// `leased`) are bookkeeping and are skipped.
///
/// # Errors
///
/// [`JournalError::Conflict`] when two shards completed the same
/// fingerprint with different metrics digests — evidence the shards came
/// from diverging binaries or configurations.
pub fn merge_journals(shards: &[Vec<JournalRecord>]) -> Result<Vec<JournalRecord>, JournalError> {
    let mut order: Vec<String> = Vec::new();
    let mut best: BTreeMap<String, JournalRecord> = BTreeMap::new();
    for shard in shards {
        for rec in shard {
            let (is_done, digest) = match &rec.event {
                JournalEvent::Done { digest, .. } => (true, Some(digest.clone())),
                JournalEvent::Failed { .. } | JournalEvent::Quarantined { .. } => (false, None),
                JournalEvent::Start { .. }
                | JournalEvent::Queued { .. }
                | JournalEvent::Leased { .. } => continue,
            };
            match best.get(&rec.fingerprint) {
                None => {
                    order.push(rec.fingerprint.clone());
                    best.insert(rec.fingerprint.clone(), rec.clone());
                }
                Some(prev) => match (&prev.event, is_done) {
                    (JournalEvent::Done { digest: d0, .. }, true) => {
                        let d1 = digest.unwrap_or_default();
                        if *d0 != d1 {
                            return Err(JournalError::Conflict {
                                fingerprint: rec.fingerprint.clone(),
                                label: rec.label.clone(),
                                digest_a: d0.clone(),
                                digest_b: d1,
                            });
                        }
                    }
                    (_, true) => {
                        // done beats failed/quarantined.
                        best.insert(rec.fingerprint.clone(), rec.clone());
                    }
                    // failed/quarantined never displace anything.
                    _ => {}
                },
            }
        }
    }
    Ok(order
        .into_iter()
        .filter_map(|fp| best.remove(&fp))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_metrics() -> RunMetrics {
        let mut m = RunMetrics {
            total_cycles: u64::MAX - 7,
            events_processed: 123_456_789_012_345,
            walks: 42,
            ..Default::default()
        };
        for v in [0, 1, 3, 900, u64::MAX / 2] {
            m.ats_latency.record(v);
        }
        m.vpn_gap.record(7);
        m
    }

    #[test]
    fn metrics_roundtrip_is_exact() {
        let m = busy_metrics();
        let json = metrics_to_json(&m);
        let back = metrics_from_json(&json).expect("roundtrip");
        assert_eq!(m, back);
        assert_eq!(json, metrics_to_json(&back), "canonical encoding stable");
        assert_eq!(metrics_digest(&m), metrics_digest(&back));
    }

    #[test]
    fn metrics_json_rejects_missing_fields() {
        let err = metrics_from_json("{\"total_cycles\":1}").expect_err("must fail");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn json_parses_nested_values() {
        let v = Json::parse(r#"{"a": [1, -2.5, "x\n\"y\""], "b": {"c": true, "d": null}}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(Json::as_arr)
                .and_then(|a| a[2].as_str()),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
    }

    #[test]
    fn json_numbers_keep_64_bit_precision() {
        let v = Json::parse(&format!("[{}, {}]", u64::MAX, u128::MAX)).expect("parse");
        let arr = v.as_arr().expect("arr");
        assert_eq!(arr[0].as_u64(), Some(u64::MAX));
        assert_eq!(arr[1].as_u128(), Some(u128::MAX));
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["a", "b"]), fingerprint(&["b", "a"]));
        assert_eq!(fingerprint(&["a", "b"]), fingerprint(&["a", "b"]));
    }

    #[test]
    fn hist_digest_tracks_distributions_not_counters() {
        let a = busy_metrics();
        let mut b = busy_metrics();
        // A scalar-counter difference changes the metrics digest but not
        // the distribution fingerprint…
        b.walks = 43;
        assert_ne!(metrics_digest(&a), metrics_digest(&b));
        assert_eq!(metrics_hist_digest(&a), metrics_hist_digest(&b));
        // …while one extra histogram observation flips it.
        b.ats_latency.record(77);
        assert_ne!(metrics_hist_digest(&a), metrics_hist_digest(&b));
    }

    #[test]
    fn done_records_without_hist_digest_still_parse() {
        // A line written by an older supervisor has no hist_digest field.
        let rec = JournalRecord {
            fingerprint: "f1".into(),
            label: "a/b".into(),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&busy_metrics()),
                hist_digest: None,
                worker: None,
                metrics: Box::new(busy_metrics()),
            },
        };
        let line = rec.to_line();
        assert!(!line.contains("hist_digest"), "{line}");
        let back = JournalRecord::from_line(&line).expect("parse legacy line");
        assert_eq!(rec, back);
    }

    #[test]
    fn done_records_without_worker_still_parse_as_none() {
        // Same migration contract as hist_digest: lines written before
        // the worker field existed parse with `worker: None`, and a
        // record with no worker emits no worker key.
        let rec = JournalRecord {
            fingerprint: "f1".into(),
            label: "a/b".into(),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&busy_metrics()),
                hist_digest: Some(metrics_hist_digest(&busy_metrics())),
                worker: None,
                metrics: Box::new(busy_metrics()),
            },
        };
        let line = rec.to_line();
        assert!(!line.contains("\"worker\""), "{line}");
        assert_eq!(JournalRecord::from_line(&line).expect("parse"), rec);
        // And a stamped record round-trips the identity.
        let stamped = JournalRecord {
            event: match rec.event.clone() {
                JournalEvent::Done {
                    attempts,
                    exit,
                    digest,
                    hist_digest,
                    metrics,
                    ..
                } => JournalEvent::Done {
                    attempts,
                    exit,
                    digest,
                    hist_digest,
                    worker: Some("w\"1".into()),
                    metrics,
                },
                other => other,
            },
            ..rec
        };
        let line = stamped.to_line();
        assert!(line.contains("\"worker\""), "{line}");
        assert_eq!(JournalRecord::from_line(&line).expect("parse"), stamped);
    }

    #[test]
    fn queue_events_roundtrip_through_lines() {
        let recs = [
            JournalRecord {
                fingerprint: "f1".into(),
                label: "gups/barre".into(),
                event: JournalEvent::Queued {
                    args: vec![
                        "sweep".into(),
                        "--smoke".into(),
                        "--job-index".into(),
                        "0".into(),
                    ],
                },
            },
            JournalRecord {
                fingerprint: "f1".into(),
                label: "gups/barre".into(),
                event: JournalEvent::Leased {
                    worker: "w1".into(),
                    lease: 2,
                },
            },
            JournalRecord {
                fingerprint: "f1".into(),
                label: "gups/barre".into(),
                event: JournalEvent::Quarantined {
                    leases: 3,
                    exit: "timeout".into(),
                },
            },
        ];
        for rec in &recs {
            let line = rec.to_line();
            let back = JournalRecord::from_line(&line).expect("parse line");
            assert_eq!(*rec, back, "{line}");
        }
    }

    #[test]
    fn merge_skips_queue_bookkeeping_and_done_beats_quarantined() {
        let done = |fp: &str, cycles: u64| JournalRecord {
            fingerprint: fp.into(),
            label: format!("app/{fp}"),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                }),
                hist_digest: None,
                worker: Some("w1".into()),
                metrics: Box::new(RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                }),
            },
        };
        let queued = |fp: &str| JournalRecord {
            fingerprint: fp.into(),
            label: format!("app/{fp}"),
            event: JournalEvent::Queued { args: vec![] },
        };
        let leased = |fp: &str| JournalRecord {
            fingerprint: fp.into(),
            label: format!("app/{fp}"),
            event: JournalEvent::Leased {
                worker: "w1".into(),
                lease: 1,
            },
        };
        let poison = |fp: &str| JournalRecord {
            fingerprint: fp.into(),
            label: format!("app/{fp}"),
            event: JournalEvent::Quarantined {
                leases: 3,
                exit: "timeout".into(),
            },
        };
        // Bookkeeping records never surface in the merge; a late done
        // from a slow worker displaces an earlier quarantine verdict.
        let merged = merge_journals(&[
            vec![
                queued("f1"),
                leased("f1"),
                poison("f1"),
                queued("f2"),
                leased("f2"),
            ],
            vec![done("f1", 10), done("f2", 20)],
        ])
        .expect("merge");
        assert_eq!(merged.len(), 2);
        assert!(matches!(merged[0].event, JournalEvent::Done { .. }));
        assert!(matches!(merged[1].event, JournalEvent::Done { .. }));
        // …and a quarantine never displaces a completed result.
        let merged = merge_journals(&[vec![done("f1", 10)], vec![poison("f1")]]).expect("merge");
        assert_eq!(merged.len(), 1);
        assert!(matches!(merged[0].event, JournalEvent::Done { .. }));
    }

    #[test]
    fn records_roundtrip_through_lines() {
        let recs = [
            JournalRecord {
                fingerprint: "f1".into(),
                label: "gups/barre".into(),
                event: JournalEvent::Start { attempt: 1 },
            },
            JournalRecord {
                fingerprint: "f1".into(),
                label: "gups/barre".into(),
                event: JournalEvent::Done {
                    attempts: 2,
                    exit: "ok".into(),
                    digest: metrics_digest(&busy_metrics()),
                    hist_digest: Some(metrics_hist_digest(&busy_metrics())),
                    worker: Some("host-a".into()),
                    metrics: Box::new(busy_metrics()),
                },
            },
            JournalRecord {
                fingerprint: "f2".into(),
                label: "gemv \"odd\"/x".into(),
                event: JournalEvent::Failed {
                    attempts: 3,
                    exit: "signal:9".into(),
                    dump: Some("j/job-2.txt".into()),
                },
            },
        ];
        for rec in &recs {
            let line = rec.to_line();
            let back = JournalRecord::from_line(&line).expect("parse line");
            assert_eq!(*rec, back, "{line}");
        }
    }

    #[test]
    fn journal_file_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("barre-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::open(&path).expect("open");
        let rec = JournalRecord {
            fingerprint: "f1".into(),
            label: "a/b".into(),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&busy_metrics()),
                hist_digest: None,
                worker: None,
                metrics: Box::new(busy_metrics()),
            },
        };
        w.append(&rec).expect("append");
        // Simulate a crash mid-append: a torn trailing line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open raw");
            write!(f, "{{\"event\":\"done\",\"finger").expect("torn write");
        }
        let recs = read_journal(&path).expect("read");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], rec);
        let index = completed_index(&recs);
        assert!(index.contains_key("f1"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_trace_jsonl_tail_is_dropped_and_duplicate_done_last_wins() {
        let dir =
            std::env::temp_dir().join(format!("barre-journal-trace-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::open(&path).expect("open");
        let done = |cycles: u64| JournalRecord {
            fingerprint: "f1".into(),
            label: "gups/fbarre".into(),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                }),
                hist_digest: Some(metrics_hist_digest(&RunMetrics::default())),
                worker: None,
                metrics: Box::new(RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                }),
            },
        };
        // The same fingerprint completes twice (a rerun shard); then the
        // process dies mid-append while writing an attached trace-JSONL
        // histogram payload, leaving a torn tail that is valid JSON
        // *prefix* but not a journal record.
        w.append(&done(10)).expect("append 1");
        w.append(&done(20)).expect("append 2");
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open raw");
            write!(
                f,
                "{{\"t\":\"hist\",\"scope\":\"stage\",\"stage\":\"ptw\",\"hist\":{{\"buckets\":[[12,"
            )
            .expect("torn write");
        }
        let recs = read_journal(&path).expect("read");
        assert_eq!(recs.len(), 2);
        let index = completed_index(&recs);
        assert_eq!(index.len(), 1);
        match &index["f1"].event {
            JournalEvent::Done { metrics, .. } => assert_eq!(metrics.total_cycles, 20),
            other => panic!("expected done, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn complete_trace_jsonl_interior_line_is_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "barre-journal-trace-interior-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        let _ = std::fs::remove_file(&path);
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&path).expect("create");
            // A syntactically complete trace-JSONL line in the middle of
            // a journal is not a crash artifact — it must error, not be
            // silently skipped.
            writeln!(
                f,
                "{{\"t\":\"span\",\"stage\":\"ptw\",\"id\":1,\"chiplet\":0,\"start\":5,\"end\":9}}"
            )
            .expect("write");
            writeln!(
                f,
                "{}",
                JournalRecord {
                    fingerprint: "f2".into(),
                    label: "a/b".into(),
                    event: JournalEvent::Start { attempt: 1 },
                }
                .to_line()
            )
            .expect("write");
        }
        let err = read_journal(&path).expect_err("interior corruption");
        assert!(
            matches!(err, JournalError::Malformed { line: 1, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn merge_unions_and_detects_conflicts() {
        let done = |fp: &str, cycles: u64| JournalRecord {
            fingerprint: fp.into(),
            label: format!("app/{fp}"),
            event: JournalEvent::Done {
                attempts: 1,
                exit: "ok".into(),
                digest: metrics_digest(&RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                }),
                hist_digest: Some(metrics_hist_digest(&RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                })),
                worker: None,
                metrics: Box::new(RunMetrics {
                    total_cycles: cycles,
                    ..Default::default()
                }),
            },
        };
        let failed = |fp: &str| JournalRecord {
            fingerprint: fp.into(),
            label: format!("app/{fp}"),
            event: JournalEvent::Failed {
                attempts: 2,
                exit: "timeout".into(),
                dump: None,
            },
        };
        // Union: f1 from shard A, f2 failed in A but done in B.
        let merged = merge_journals(&[vec![done("f1", 10), failed("f2")], vec![done("f2", 20)]])
            .expect("merge");
        assert_eq!(merged.len(), 2);
        assert!(matches!(merged[0].event, JournalEvent::Done { .. }));
        assert!(matches!(merged[1].event, JournalEvent::Done { .. }));
        // Identical completions merge fine.
        assert!(merge_journals(&[vec![done("f1", 10)], vec![done("f1", 10)]]).is_ok());
        // Diverging digests are a conflict.
        let err =
            merge_journals(&[vec![done("f1", 10)], vec![done("f1", 11)]]).expect_err("conflict");
        assert!(matches!(err, JournalError::Conflict { .. }), "{err}");
    }
}
