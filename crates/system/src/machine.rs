//! The full-machine event-driven model.
//!
//! One [`Machine`] owns every component: CU warp slots pulling accesses
//! from CTA streams, per-CU L1 TLBs and L1 data caches, per-chiplet L2
//! TLBs (with MSHRs), L2 data caches and DRAM, the mesh, the PCIe link,
//! the IOMMU (or per-chiplet GMMUs), and — depending on the translation
//! mode — Valkyrie's peer-L1 probing and prefetcher, Least's remote-L2
//! trackers, or F-Barre's LCF/RCF filter banks with PEC logic.
//!
//! The model is a single-threaded discrete-event simulation over
//! [`barre_sim::EventQueue`]; with a fixed seed, every run is
//! cycle-reproducible.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use barre_core::fbarre::{FilterBank, FilterCmd, FilterUpdate};
use barre_core::{CoalInfo, CoalMode, PecBuffer, PecEntry, PecLogic};
use barre_filters::{Filter, IdealFilter};
use barre_gpu::pattern::AccessPattern;
use barre_gpu::{CtaScheduler, GmmuConfig, GmmuUnit, Mesh, TagCache};
use barre_iommu::{
    AtsRequest, AtsResponse, Iommu, IommuConfig, ATS_REQUEST_BYTES, ATS_RESPONSE_BYTES,
};
use barre_mapping::Acud;
use barre_mem::{ChipletId, FrameAllocator, GlobalPfn, PageTable, Vpn};
use barre_sim::{Cycle, EventQueue, FaultInjector, Link};
use barre_tlb::{MshrFile, MshrOutcome, Tlb, TlbKey};
use barre_trace::{Sample, Stage, TraceOptions, TraceRecorder, Tracer};

use crate::config::{MmuKind, SystemConfig, TranslationMode};
use crate::error::SimError;
use crate::metrics::RunMetrics;
use crate::reqtrack::{AtsPendingTable, PendingAts, ReqSlab};

/// Payload of an L2 TLB entry: the frame plus the coalescing bits the ATS
/// response carried (F-Barre stores them "with the PFN", §V-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Payload {
    /// Translated frame.
    pub pfn: GlobalPfn,
    /// Raw 11-bit coalescing field (0 when uncoalesced).
    pub coal_bits: u16,
}

/// Wire size of an F-Barre filter-update message (43 bits → 6 bytes).
const FILTER_UPDATE_BYTES: u64 = 6;
/// Wire size of a peer translation probe / reply.
const PEER_MSG_BYTES: u64 = 16;
/// Mesh backlog (cycles) beyond which best-effort filter updates drop.
const FILTER_DROP_BACKLOG: Cycle = 768;
/// Retry interval when the L2 MSHR file is full.
const MSHR_RETRY: Cycle = 30;
/// Extra cycles for a Valkyrie sibling-L1 probe.
const L1_PEER_PROBE: Cycle = 5;
/// PEC calculation latency on the chiplet-side path.
const CHIPLET_PEC_CALC: Cycle = 2;
/// Offset separating ATS/PTW infrastructure span ids from per-request
/// journey ids in the trace (Chrome-trace `tid` namespace).
const ATS_TRACE_ID_BASE: u64 = 1 << 62;

/// VPNs per [`FilterBatch`]. Large enough for a full coalescing group in
/// every stock topology (≤8 sharers × 2 merged); oversized groups are
/// chunked into consecutive same-cycle events, which peers apply in the
/// identical order.
const FILTER_BATCH_MAX: usize = 16;

/// One peer-bound advertisement packet: the whole group's filter updates
/// share a command, sender, and ASID, so the event stores the VPNs
/// inline instead of heap-allocating a `Vec<FilterUpdate>` per packet.
#[derive(Debug, Clone)]
struct FilterBatch {
    cmd: FilterCmd,
    sender: ChipletId,
    asid: u16,
    len: u8,
    vpns: [Vpn; FILTER_BATCH_MAX],
}

#[derive(Debug)]
enum Ev {
    Issue {
        chiplet: u8,
        cu: u16,
        slot: u8,
    },
    Translate {
        page: u32,
    },
    AtsArrive {
        req: AtsRequest,
    },
    WalkDone {
        ptw: usize,
    },
    GmmuWalkDone {
        chiplet: u8,
        walker: usize,
    },
    RespArrive {
        resp: AtsResponse,
    },
    PeerProbe {
        page: u32,
        at: u8,
    },
    PeerReply {
        page: u32,
        result: Option<L2Payload>,
    },
    FilterUpd {
        at: u8,
        batch: FilterBatch,
    },
    MemStart {
        page: u32,
    },
    MemDone {
        page: u32,
    },
    MshrRetry {
        page: u32,
    },
    /// ATS retry deadline for an outstanding `(chiplet, key)` attempt.
    /// Stale timers (epoch mismatch, or already-filled key) no-op.
    AtsDeadline {
        chiplet: u8,
        key: TlbKey,
        epoch: u64,
    },
    /// Conventional-walk fallback completes after retries are exhausted.
    FallbackDone {
        chiplet: u8,
        key: TlbKey,
    },
}

struct Stream {
    pattern: Box<dyn AccessPattern>,
    asid: u16,
    warps: u64,
}

struct CuState {
    slots: Vec<Option<Stream>>,
}

struct WarpInst {
    chiplet: u8,
    cu: u16,
    slot: u8,
    pages_left: u32,
}

#[derive(Debug, Clone)]
struct PageReq {
    inst: u32,
    asid: u16,
    vpn: Vpn,
    page_off: u64,
    write: bool,
    chiplet: u8,
    cu: u16,
    pfn: Option<GlobalPfn>,
    /// MSHR-full replay attempts (drives exponential backoff).
    attempts: u8,
    /// Unique journey id (tracing; assigned at issue).
    trace_id: u64,
    /// Cycle the warp issued this page access (journey-span anchor).
    issued_at: Cycle,
    /// Cycle this request entered the L2 miss path (fill-span anchor;
    /// 0 until the first primary/merged MSHR allocation).
    miss_at: Cycle,
}

struct ChipletState {
    l2_tlb: Tlb<L2Payload>,
    l2_mshr: MshrFile<TlbKey, Option<u32>>,
    l1_tlbs: Vec<Tlb<GlobalPfn>>,
    l1d: Vec<TagCache>,
    l2d: TagCache,
    dram_free: Cycle,
    filters: Option<FilterBank>,
    pec_buffer: PecBuffer,
    gmmu: Option<GmmuUnit>,
}

/// The assembled machine. Build one with [`crate::runner::build_machine`]
/// (or the higher-level [`crate::runner::run_app`]), then call
/// [`run`](Self::run).
pub struct Machine {
    cfg: SystemConfig,
    page_shift: u32,
    coal_mode: CoalMode,
    pec_logic: PecLogic,
    page_tables: Vec<PageTable>,
    frames: Vec<FrameAllocator>,
    master_pecs: Vec<PecEntry>,
    /// Mapping plans per data object (fault-time allocation under
    /// demand paging).
    plans: Vec<barre_core::MappingPlan>,
    driver: barre_core::driver::BarreAllocator,
    iommu: Iommu,
    iommu_overflow: VecDeque<AtsRequest>,
    pcie_up: Link,
    pcie_down: Link,
    mesh: Mesh,
    /// Low-priority virtual channel for F-Barre filter updates — they
    /// ride spare mesh bandwidth off the data path (§V-A2: best effort,
    /// "not in the critical path").
    filter_vc: Vec<Link>,
    chiplets: Vec<ChipletState>,
    shared_l2: Option<Tlb<L2Payload>>,
    least_trackers: Vec<IdealFilter>,
    /// Last L2-missed VPN per chiplet (Valkyrie's stride confirmation:
    /// prefetch vpn+1 only on a sequential miss streak).
    valkyrie_last_miss: Vec<Option<TlbKey>>,
    sched: CtaScheduler,
    cus: Vec<Vec<CuState>>,
    acud: Option<Acud>,
    insts: Vec<WarpInst>,
    free_insts: Vec<u32>,
    pages: Vec<PageReq>,
    free_pages: Vec<u32>,
    /// In-flight ATS request provenance, indexed by the request id itself.
    req_track: ReqSlab,
    queue: EventQueue<Ev>,
    now: Cycle,
    m: RunMetrics,
    /// Fault decision engine; `None` on fault-free runs (so they make no
    /// extra RNG draws and stay cycle-identical to pre-fault builds).
    injector: Option<FaultInjector>,
    /// Whether ATS sends arm retry deadlines: requires a retry config
    /// AND a plan that can lose/delay ATS traffic. On fault-free runs no
    /// timer events are scheduled — an always-armed timer would extend
    /// the final event horizon and break cycle identity.
    arm_deadlines: bool,
    ats_pending: AtsPendingTable,
    ats_epoch: u64,
    /// Cycle of the last retired warp memory access (watchdog input).
    last_progress: Cycle,
    /// Translation-path tracer ([`Tracer::Noop`] unless the machine was
    /// started through [`Machine::run_traced`]). Tracing is passive — it
    /// never schedules events — so recording cannot perturb cycle
    /// counts, and the Noop arms keep the hot path on its profile.
    tracer: Tracer,
    /// Journey-id allocator for traced page requests.
    trace_seq: u64,
    /// Reused member-enumeration buffer for the broadcast path (cleared
    /// before each use; never escapes a single call).
    scratch_members: Vec<barre_core::GroupMember>,
    /// Reused sharer-peer buffer for the broadcast path.
    scratch_peers: Vec<ChipletId>,
    /// Heap-allocation counter hook for the zero-alloc hot-path
    /// assertion. A test harness that owns a counting global allocator
    /// installs its counter via [`Machine::set_alloc_probe`]; the probe
    /// paths then `debug_assert` the count is unchanged across each
    /// probe. `None` (the default) costs one branch.
    #[cfg(debug_assertions)]
    alloc_probe: Option<fn() -> u64>,
    /// Accumulated conservation-law violations (sanitizer builds only).
    #[cfg(feature = "sanitizer")]
    san: crate::sanitizer::SanitizerReport,
}

/// Re-encodes a translated PTE's coalescing bits from the perspective of
/// `member` — the bits the calculated entry would have carried had it been
/// translated directly. A free function (not a `Machine` method) so the
/// borrow-split probe closures can call it while chiplet state is
/// borrowed.
fn member_bits(
    pec_logic: &PecLogic,
    pte_vpn: Vpn,
    info: &CoalInfo,
    entry: &PecEntry,
    member: Vpn,
) -> Option<u16> {
    let m = pec_logic.member_for(pte_vpn, info, entry, member)?;
    let rebuilt = match *info {
        CoalInfo::Base { bitmap, .. } => CoalInfo::Base {
            bitmap,
            inter_order: m.inter_order,
        },
        CoalInfo::Expanded { bitmap, merged, .. } => CoalInfo::Expanded {
            bitmap,
            inter_order: m.inter_order,
            intra_order: m.intra_order,
            merged,
        },
        CoalInfo::Wide { count, .. } => CoalInfo::Wide {
            count,
            inter_order: m.inter_order,
        },
    };
    Some(rebuilt.encode())
}

impl Machine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        cfg: SystemConfig,
        page_tables: Vec<PageTable>,
        frames: Vec<FrameAllocator>,
        master_pecs: Vec<PecEntry>,
        plans: Vec<barre_core::MappingPlan>,
        sched: CtaScheduler,
        seed: u64,
    ) -> Self {
        let n = cfg.topology.n_chiplets;
        let page_shift = cfg.page_size.shift();
        let coal_mode = crate::runner::coal_mode_of(&cfg);
        let fbarre = match cfg.mode {
            TranslationMode::FBarre(f) => Some(f),
            _ => None,
        };
        let iommu = Iommu::new(IommuConfig {
            pw_queue_entries: cfg.pw_queue_entries,
            ptws: cfg.ptws,
            walk_latency: cfg.walk_latency,
            barre: cfg.mode.uses_barre(),
            coal_mode,
            ship_pec_entry: fbarre.is_some(),
            coalescing_sched: fbarre.map(|f| f.ptw_sched).unwrap_or(false),
            max_merged: cfg.mode.max_merged(),
            pec_calc_latency: 2,
            multicast: cfg.barre_multicast,
            iommu_tlb: cfg.iommu_tlb,
            pec_buffer_entries: cfg.pec_buffer_entries,
        });
        let mut iommu = iommu;
        for e in &master_pecs {
            iommu.register_pec(e.clone());
        }
        let mesh = Mesh::new(
            n,
            cfg.mesh_latency,
            (cfg.mesh_bytes_per_cycle / n as u64).max(1),
        );
        let filter_vc = (0..n)
            .map(|_| {
                Link::new(
                    cfg.mesh_latency,
                    (cfg.mesh_bytes_per_cycle / (8 * n as u64)).max(1),
                )
            })
            .collect();
        let gmmu_cfg = GmmuConfig {
            walkers: (cfg.ptws.unwrap_or(16) / n).max(1),
            queue_entries: (cfg.pw_queue_entries / n).max(4),
            local_walk_latency: cfg.walk_latency * 3 / 5,
            remote_walk_penalty: 2 * cfg.mesh_latency + cfg.walk_latency / 5,
            barre: cfg.mode.uses_barre(),
            coal_mode,
            pec_calc_latency: 2,
            pec_buffer_entries: cfg.pec_buffer_entries,
        };
        let chiplets: Vec<ChipletState> = (0..n)
            .map(|c| {
                let cid = ChipletId(c as u8);
                let cus = cfg.topology.cus_per_chiplet();
                let mut pec_buffer = PecBuffer::new(cfg.pec_buffer_entries);
                // F-Barre chiplets learn PEC records from ATS responses;
                // under GMMU+Barre the driver programs them directly.
                let gmmu = (cfg.mmu == MmuKind::Gmmu).then(|| {
                    let mut g = GmmuUnit::new(cid, gmmu_cfg.clone());
                    for e in &master_pecs {
                        g.register_pec(e.clone());
                    }
                    g
                });
                if gmmu.is_some() {
                    for e in &master_pecs {
                        pec_buffer.insert(e.clone());
                    }
                }
                ChipletState {
                    l2_tlb: Tlb::new(cfg.l2_tlb_entries, cfg.l2_tlb_ways),
                    l2_mshr: MshrFile::new(cfg.l2_tlb_mshrs),
                    l1_tlbs: (0..cus)
                        .map(|_| Tlb::new(cfg.l1_tlb_entries, cfg.l1_tlb_entries))
                        .collect(),
                    l1d: (0..cus)
                        .map(|_| TagCache::new(cfg.l1d_bytes, 4, cfg.line_bytes))
                        .collect(),
                    l2d: TagCache::new(cfg.l2d_bytes, 16, cfg.line_bytes),
                    dram_free: 0,
                    filters: fbarre
                        .filter(|f| f.peer_sharing)
                        .map(|f| FilterBank::new(cid, n, f.filter_rows, cfg.seed ^ 0xF117)),
                    pec_buffer,
                    gmmu,
                }
            })
            .collect();
        let shared_l2 = matches!(cfg.mode, TranslationMode::SharedL2Ideal)
            .then(|| Tlb::new(cfg.l2_tlb_entries * n, cfg.l2_tlb_ways));
        let least_trackers = (0..n).map(|_| IdealFilter::with_capacity(1024)).collect();
        let cus = (0..n)
            .map(|_| {
                (0..cfg.topology.cus_per_chiplet())
                    .map(|_| CuState {
                        slots: (0..cfg.cu_slots).map(|_| None).collect(),
                    })
                    .collect()
            })
            .collect();
        let acud = cfg.migration.map(|mc| Acud::new(mc.threshold, n));
        // Steady-state occupancy bound: every warp slot machine-wide can
        // hold one in-flight instruction, each touching up to four
        // distinct pages. Sizing the slabs and the event wheel from that
        // bound makes the hot loop allocation-free after warm-up.
        let warp_slots = n * cfg.topology.cus_per_chiplet() * cfg.cu_slots;
        let page_slots = warp_slots * 4;
        Self {
            pec_logic: PecLogic::new(coal_mode),
            page_shift,
            coal_mode,
            page_tables,
            frames,
            master_pecs,
            driver: barre_core::driver::BarreAllocator::new(
                crate::runner::coal_mode_of(&cfg),
                cfg.mode.max_merged(),
            ),
            plans,
            iommu,
            iommu_overflow: VecDeque::with_capacity(64),
            filter_vc,
            pcie_up: Link::new(cfg.pcie_latency, cfg.pcie_bytes_per_cycle),
            pcie_down: Link::new(cfg.pcie_latency, cfg.pcie_bytes_per_cycle),
            mesh,
            chiplets,
            shared_l2,
            least_trackers,
            valkyrie_last_miss: vec![None; n],
            sched,
            cus,
            acud,
            insts: Vec::with_capacity(warp_slots),
            free_insts: Vec::with_capacity(warp_slots),
            pages: Vec::with_capacity(page_slots),
            free_pages: Vec::with_capacity(page_slots),
            req_track: ReqSlab::with_capacity(page_slots),
            queue: EventQueue::with_capacity(page_slots),
            now: 0,
            m: RunMetrics::default(),
            injector: (!cfg.fault_plan.is_empty())
                .then(|| FaultInjector::new(cfg.fault_plan, seed ^ 0xFA01_7FA0)),
            arm_deadlines: cfg.ats_retry.is_some() && cfg.fault_plan.affects_ats(),
            ats_pending: AtsPendingTable::new(n),
            ats_epoch: 0,
            last_progress: 0,
            tracer: Tracer::Noop,
            trace_seq: 0,
            scratch_members: Vec::new(),
            scratch_peers: Vec::new(),
            #[cfg(debug_assertions)]
            alloc_probe: None,
            #[cfg(feature = "sanitizer")]
            san: crate::sanitizer::SanitizerReport::default(),
            cfg,
        }
    }

    /// Installs a heap-allocation counter for the zero-alloc hot-path
    /// assertion (debug builds only). The counter is typically backed by
    /// a counting `#[global_allocator]` owned by an integration-test
    /// binary; with it installed, every F-Barre probe `debug_assert`s
    /// that it performed zero heap allocations.
    #[cfg(debug_assertions)]
    pub fn set_alloc_probe(&mut self, counter: fn() -> u64) {
        self.alloc_probe = Some(counter);
    }

    /// Runs the machine to completion and returns the measurements.
    ///
    /// # Errors
    ///
    /// [`SimError::NoProgress`] when the watchdog sees no warp memory
    /// instruction retire within `cfg.watchdog_cycles`, or the event
    /// queue drains with live state behind (pending MSHRs, undispatched
    /// CTAs, outstanding ATS) — both carry a state dump and the metrics
    /// collected so far. [`SimError::EventBudgetExceeded`] on a runaway
    /// event loop, [`SimError::TranslationFault`] on an unmapped access
    /// without demand paging, [`SimError::OutOfFrames`] when a
    /// demand-paging fault cannot be served.
    pub fn run(mut self) -> Result<RunMetrics, SimError> {
        self.run_loop()?;
        Ok(self.finalize())
    }

    /// Runs the machine to completion with a recording tracer attached,
    /// returning the measurements together with the trace recorder
    /// (stage/chiplet latency histograms, the span ring, and the
    /// event-cadence time-series samples).
    ///
    /// Tracing is passive — it schedules nothing and reads no clocks —
    /// so the returned `RunMetrics` are byte-identical to an untraced
    /// [`Machine::run`] of the same machine, and the recorder's contents
    /// are deterministic for a fixed seed.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Machine::run`].
    pub fn run_traced(
        mut self,
        opts: &TraceOptions,
    ) -> Result<(RunMetrics, Box<TraceRecorder>), SimError> {
        self.tracer = Tracer::recording(opts);
        self.run_loop()?;
        let recorder = self
            .tracer
            .take_recorder()
            .unwrap_or_else(|| Box::new(TraceRecorder::new(&TraceOptions::default())));
        Ok((self.finalize(), recorder))
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        // Prime every CU slot, staggered: real kernels ramp up as blocks
        // arrive over thousands of cycles; starting every stream at t=0
        // phase-locks the whole machine into translation/memory waves.
        let mut flat = 0u64;
        for c in 0..self.cfg.topology.n_chiplets {
            for cu in 0..self.cfg.topology.cus_per_chiplet() {
                for s in 0..self.cfg.cu_slots {
                    let at = (flat.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % 40_000;
                    flat += 1;
                    self.queue.push(
                        at,
                        Ev::Issue {
                            chiplet: c as u8,
                            cu: cu as u16,
                            slot: s as u8,
                        },
                    );
                }
            }
        }
        let budget: u64 = 2_000_000_000;
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            // Watchdog: observation only — it schedules nothing, so an
            // armed watchdog never perturbs cycle counts.
            if let Some(k) = self.cfg.watchdog_cycles {
                if self.now.saturating_sub(self.last_progress) > k {
                    return Err(self.no_progress(format!(
                        "watchdog: no warp memory instruction retired in {k} cycles"
                    )));
                }
            }
            self.handle(ev)?;
            #[cfg(feature = "sanitizer")]
            if self.queue.processed().is_multiple_of(SANITIZER_EPOCH) {
                self.sanitizer_check(false);
            }
            // Time-series sampling rides the sanitizer cadence (passive:
            // reads counters, schedules nothing).
            if self.tracer.is_enabled() && self.queue.processed().is_multiple_of(SANITIZER_EPOCH) {
                self.trace_sample();
            }
            if self.queue.processed() >= budget {
                return Err(SimError::EventBudgetExceeded {
                    processed: self.queue.processed(),
                    cycle: self.now,
                });
            }
        }
        // The queue drained; a healthy machine leaves no live state.
        if let Some(leftovers) = self.leftover_state() {
            return Err(self.no_progress(format!("event queue drained with {leftovers}")));
        }
        #[cfg(feature = "sanitizer")]
        self.sanitizer_check(true);
        // Final sample at drain so the time series always covers the
        // run's tail.
        if self.tracer.is_enabled() {
            self.trace_sample();
        }
        Ok(())
    }

    /// Snapshots cumulative counters into the tracer's time series.
    fn trace_sample(&mut self) {
        let mut l1 = (0u64, 0u64);
        let mut l2 = (0u64, 0u64);
        for ch in &self.chiplets {
            for t in &ch.l1_tlbs {
                let (h, m) = t.hits_misses();
                l1.0 = l1.0.saturating_add(h);
                l1.1 = l1.1.saturating_add(m);
            }
            let (h, m) = ch.l2_tlb.hits_misses();
            l2.0 = l2.0.saturating_add(h);
            l2.1 = l2.1.saturating_add(m);
        }
        if let Some(shared) = &self.shared_l2 {
            let (h, m) = shared.hits_misses();
            l2.0 = l2.0.saturating_add(h);
            l2.1 = l2.1.saturating_add(m);
        }
        let sample = Sample {
            cycle: self.now,
            events: self.queue.processed(),
            l1_hits: l1.0,
            l1_misses: l1.1,
            l2_hits: l2.0,
            l2_misses: l2.1,
            ats_in_flight: self.req_track.len() as u64,
            pcie_bytes: self.pcie_up.total_bytes() + self.pcie_down.total_bytes(),
            mesh_bytes: self.mesh.total_bytes()
                + self.filter_vc.iter().map(Link::total_bytes).sum::<u64>(),
            queue_spills: self.queue.spills(),
            queue_rebins: self.queue.rebins(),
            queue_growths: self.queue.growths(),
            queue_buckets: self.queue.buckets() as u64,
        };
        self.tracer.sample(sample);
    }

    fn handle(&mut self, ev: Ev) -> Result<(), SimError> {
        match ev {
            Ev::Issue { chiplet, cu, slot } => self.issue(chiplet, cu, slot),
            Ev::Translate { page } => self.translate(page),
            Ev::AtsArrive { req } => self.ats_arrive(req),
            Ev::WalkDone { ptw } => self.walk_done(ptw),
            Ev::GmmuWalkDone { chiplet, walker } => self.gmmu_walk_done(chiplet, walker),
            Ev::RespArrive { resp } => return self.resp_arrive(resp),
            Ev::PeerProbe { page, at } => self.peer_probe(page, at),
            Ev::PeerReply { page, result } => self.peer_reply(page, result),
            Ev::FilterUpd { at, batch } => {
                if let Some(f) = &mut self.chiplets[at as usize].filters {
                    for &vpn in &batch.vpns[..batch.len as usize] {
                        f.apply_update(FilterUpdate {
                            cmd: batch.cmd,
                            sender: batch.sender,
                            asid: batch.asid,
                            vpn,
                        });
                    }
                }
            }
            Ev::MemStart { page } => self.mem_start(page),
            Ev::MemDone { page } => self.mem_done(page),
            Ev::MshrRetry { page } => self.l2_miss_path(page),
            Ev::AtsDeadline {
                chiplet,
                key,
                epoch,
            } => return self.ats_deadline(chiplet, key, epoch),
            Ev::FallbackDone { chiplet, key } => self.fallback_done(chiplet, key),
        }
        Ok(())
    }

    /// Builds the watchdog's abort error: state dump plus the metrics
    /// collected so far (marked `watchdog_fired`).
    fn no_progress(&mut self, detail: String) -> SimError {
        self.harvest();
        self.m.watchdog_fired = 1;
        let pending_mshrs: usize = self.chiplets.iter().map(|c| c.l2_mshr.in_use()).sum();
        let undispensed: usize = (0..self.chiplets.len())
            .map(|c| self.sched.pending(ChipletId(c as u8)))
            .sum();
        let dump = format!(
            "{detail} [cycle={} pending_mshrs={pending_mshrs} outstanding_ats={} \
             inflight_reqs={} undispensed_ctas={undispensed} iommu_overflow={} \
             events_processed={}]",
            self.now,
            self.ats_pending.len(),
            self.req_track.len(),
            self.iommu_overflow.len(),
            self.queue.processed(),
        );
        SimError::NoProgress {
            cycle: self.now,
            dump,
            metrics: Box::new(self.m.clone()),
        }
    }

    /// Live state remaining after the queue drained, if any — the quiet
    /// hang the watchdog window can miss when nothing is scheduled at
    /// all (e.g. every retry exhausted with recovery disabled).
    fn leftover_state(&self) -> Option<String> {
        let pending_mshrs: usize = self.chiplets.iter().map(|c| c.l2_mshr.in_use()).sum();
        let undispensed = !self.sched.is_drained();
        if pending_mshrs == 0 && !undispensed && self.ats_pending.is_empty() {
            return None;
        }
        Some(format!(
            "live state: pending_mshrs={pending_mshrs} outstanding_ats={} \
             scheduler_drained={}",
            self.ats_pending.len(),
            !undispensed,
        ))
    }

    // ----- CU issue -----

    fn issue(&mut self, chiplet: u8, cu: u16, slot: u8) {
        let now = self.now;
        loop {
            let slot_ref = &mut self.cus[chiplet as usize][cu as usize].slots[slot as usize];
            if slot_ref.is_none() {
                match self.sched.next_for(ChipletId(chiplet)) {
                    Some(cta) => {
                        *slot_ref = Some(Stream {
                            pattern: cta.pattern,
                            asid: cta.asid,
                            warps: 0,
                        });
                    }
                    None => return, // slot retires
                }
            }
            // The slot was just (re)filled above; an empty slot here
            // would be a scheduler bug — retire it instead of panicking.
            let Some(stream) =
                self.cus[chiplet as usize][cu as usize].slots[slot as usize].as_mut()
            else {
                return;
            };
            let capped = self
                .cfg
                .max_warps_per_cta
                .is_some_and(|cap| stream.warps >= cap);
            let warp = if capped {
                None
            } else {
                stream.pattern.next_warp()
            };
            match warp {
                None => {
                    // CTA finished; loop to fetch the next one.
                    self.cus[chiplet as usize][cu as usize].slots[slot as usize] = None;
                    continue;
                }
                Some(w) => {
                    stream.warps += 1;
                    let insns = stream.pattern.insns_per_access();
                    let asid = stream.asid;
                    self.m.warp_mem_instructions += 1;
                    self.m.warp_instructions += insns;
                    // Hardware warp coalescer: dedup pages across lanes.
                    let mut pages: Vec<(Vpn, u64)> = Vec::with_capacity(4);
                    for a in &w.addrs {
                        let vpn = a.vpn(self.page_shift);
                        if !pages.iter().any(|(v, _)| *v == vpn) {
                            pages.push((vpn, a.page_offset(self.page_shift)));
                        }
                    }
                    let inst = self.alloc_inst(WarpInst {
                        chiplet,
                        cu,
                        slot,
                        pages_left: pages.len() as u32,
                    });
                    for (vpn, off) in pages {
                        self.trace_seq += 1;
                        let page = self.alloc_page(PageReq {
                            inst,
                            asid,
                            vpn,
                            page_off: off,
                            write: w.write,
                            chiplet,
                            cu,
                            pfn: None,
                            attempts: 0,
                            trace_id: self.trace_seq,
                            issued_at: now,
                            miss_at: 0,
                        });
                        self.queue.push(now, Ev::Translate { page });
                    }
                    return;
                }
            }
        }
    }

    // ----- translation front end -----

    fn translate(&mut self, page: u32) {
        let now = self.now;
        let p = self.pages[page as usize].clone();
        let key = TlbKey {
            asid: p.asid,
            vpn: p.vpn,
        };
        self.m.l1_tlb_lookups += 1;
        let l1_done = now + self.cfg.l1_tlb_latency;
        self.tracer
            .span(Stage::TlbL1, p.trace_id, p.chiplet as u16, now, l1_done);
        let cu_idx = self.cfg.topology.cu_index_flat(p.cu);
        let cu_l1 = &mut self.chiplets[p.chiplet as usize].l1_tlbs[cu_idx];
        if let Some(&pfn) = cu_l1.lookup(key) {
            self.pages[page as usize].pfn = Some(pfn);
            self.tracer.span(
                Stage::CuIssue,
                p.trace_id,
                p.chiplet as u16,
                p.issued_at,
                l1_done,
            );
            self.queue
                .push(now + self.cfg.l1_tlb_latency, Ev::MemStart { page });
            return;
        }
        self.m.l1_tlb_misses += 1;
        // Valkyrie: probe sibling L1s in the chiplet.
        if matches!(self.cfg.mode, TranslationMode::Valkyrie) {
            let ch = &mut self.chiplets[p.chiplet as usize];
            let hit = ch
                .l1_tlbs
                .iter()
                .map(|t| t.probe(key).copied())
                .find(Option::is_some)
                .flatten();
            if let Some(pfn) = hit {
                self.m.l1_peer_hits += 1;
                let idx = self.cfg.topology.cu_index_flat(p.cu);
                ch.l1_tlbs[idx].insert(key, pfn);
                self.pages[page as usize].pfn = Some(pfn);
                self.tracer.span(
                    Stage::CuIssue,
                    p.trace_id,
                    p.chiplet as u16,
                    p.issued_at,
                    now + self.cfg.l1_tlb_latency + L1_PEER_PROBE,
                );
                self.queue.push(
                    now + self.cfg.l1_tlb_latency + L1_PEER_PROBE,
                    Ev::MemStart { page },
                );
                return;
            }
        }
        self.l2_miss_path(page);
    }

    /// L2 TLB lookup and, on miss, the mode-specific downstream path.
    /// Also the MSHR-retry entry point.
    fn l2_miss_path(&mut self, page: u32) {
        let now = self.now;
        let p = self.pages[page as usize].clone();
        let key = TlbKey {
            asid: p.asid,
            vpn: p.vpn,
        };
        let t1 = now + self.cfg.l1_tlb_latency + self.cfg.l2_tlb_latency;
        self.m.l2_tlb_lookups += 1;
        let hit = match &mut self.shared_l2 {
            Some(shared) => shared.lookup(key).copied(),
            None => self.chiplets[p.chiplet as usize]
                .l2_tlb
                .lookup(key)
                .copied(),
        };
        if let Some(payload) = hit {
            self.tracer.span(
                Stage::TlbL2,
                p.trace_id,
                p.chiplet as u16,
                now + self.cfg.l1_tlb_latency,
                t1,
            );
            self.tracer.span(
                Stage::CuIssue,
                p.trace_id,
                p.chiplet as u16,
                p.issued_at,
                t1,
            );
            self.fill_l1(p.chiplet, p.cu, key, payload.pfn);
            self.pages[page as usize].pfn = Some(payload.pfn);
            self.queue.push(t1, Ev::MemStart { page });
            return;
        }
        match self.chiplets[p.chiplet as usize]
            .l2_mshr
            .allocate(key, Some(page))
        {
            MshrOutcome::Merged => {
                self.tracer.span(
                    Stage::TlbL2,
                    p.trace_id,
                    p.chiplet as u16,
                    now + self.cfg.l1_tlb_latency,
                    t1,
                );
                self.pages[page as usize].miss_at = now;
            }
            MshrOutcome::Full => {
                // MSHR file full: the access replays with exponential
                // backoff plus a deterministic per-page jitter. The
                // jitter keeps rejected streams from phase-locking into
                // convoys; the exponential growth bounds replay traffic.
                self.m.l2_tlb_lookups -= 1;
                let attempts = self.pages[page as usize].attempts;
                self.pages[page as usize].attempts = attempts.saturating_add(1);
                let mix = (page as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(now)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let base = MSHR_RETRY << attempts.min(5);
                let backoff = base + mix % base.max(1);
                self.queue.push(t1 + backoff, Ev::MshrRetry { page });
            }
            MshrOutcome::Primary => {
                // MPKI counts unique (primary) misses; merged duplicates
                // ride the same outstanding translation.
                self.tracer.span(
                    Stage::TlbL2,
                    p.trace_id,
                    p.chiplet as u16,
                    now + self.cfg.l1_tlb_latency,
                    t1,
                );
                self.pages[page as usize].miss_at = now;
                self.pages[page as usize].attempts = 0;
                self.m.l2_tlb_misses += 1;
                // Miss-path replay overhead: the LSU re-plays the warp's
                // memory instruction and re-arbitrates the TLB port.
                // Deterministic per-page spread; without it, uniform
                // miss latencies phase-lock the closed loop into
                // translation/memory convoys no real warp scheduler
                // exhibits.
                let mix = (key.vpn.0)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(now)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let replay = mix % 240;
                self.downstream(page, key, t1 + replay);
                self.maybe_prefetch(p.chiplet, key, t1 + replay);
            }
        }
    }

    /// Valkyrie's next-VPN L2 prefetch, gated on a sequential miss
    /// streak so gather workloads do not flood the IOMMU with useless
    /// prefetches.
    fn maybe_prefetch(&mut self, chiplet: u8, key: TlbKey, t: Cycle) {
        if !matches!(self.cfg.mode, TranslationMode::Valkyrie) {
            return;
        }
        let confirmed = self.valkyrie_last_miss[chiplet as usize]
            .is_some_and(|prev| prev.asid == key.asid && prev.vpn.0 + 1 == key.vpn.0);
        self.valkyrie_last_miss[chiplet as usize] = Some(key);
        if !confirmed {
            return;
        }
        let next = TlbKey {
            asid: key.asid,
            vpn: Vpn(key.vpn.0 + 1),
        };
        {
            let ch = &self.chiplets[chiplet as usize];
            if ch.l2_tlb.probe(next).is_some() || ch.l2_mshr.is_pending(next) {
                return;
            }
        }
        // Only prefetch mapped pages.
        if self.page_tables[next.asid as usize]
            .lookup(next.vpn)
            .is_none()
        {
            return;
        }
        if self.chiplets[chiplet as usize].l2_mshr.allocate(next, None) == MshrOutcome::Primary {
            self.m.prefetches += 1;
            self.send_ats_inner(chiplet, next, t, true);
        }
    }

    /// Mode-specific path below a primary L2 miss.
    fn downstream(&mut self, page: u32, key: TlbKey, t: Cycle) {
        let p = self.pages[page as usize].clone();
        match self.cfg.mode {
            TranslationMode::FBarre(f) if f.peer_sharing => {
                // 1) Local calculation through the LCF.
                if let Some(payload) = self.try_local_coalesced(p.chiplet, key, f.max_merged) {
                    self.m.intra_mcm_translations += 1;
                    self.m.lcf_translations += 1;
                    let done = t + 1 + self.cfg.l2_tlb_latency + CHIPLET_PEC_CALC;
                    self.tracer
                        .span(Stage::PecLookup, p.trace_id, p.chiplet as u16, t, done);
                    self.finish_l2_miss_at(p.chiplet, key, payload, done);
                    return;
                }
                // 2) Remote calculation through the RCFs (negative-cached:
                // repeated misses skip the filter probes entirely).
                let peer = self.chiplets[p.chiplet as usize]
                    .filters
                    .as_mut()
                    .and_then(|fb| fb.rcf_hit_cached(key.asid, key.vpn));
                if let Some(peer) = peer {
                    self.m.peer_probes += 1;
                    self.m.rcf_remote_attempts += 1;
                    let at = if f.oracle_traffic {
                        t + self.cfg.mesh_latency
                    } else {
                        self.filter_vc[p.chiplet as usize].send(t, PEER_MSG_BYTES)
                    };
                    self.queue.push(at, Ev::PeerProbe { page, at: peer.0 });
                    return;
                }
                self.send_ats(page, key, t);
            }
            TranslationMode::Least => {
                let me = p.chiplet as usize;
                let fkey = barre_core::fbarre::filter_key(key.asid, key.vpn);
                let peer = (0..self.chiplets.len())
                    .find(|&c| c != me && self.least_trackers[c].contains(fkey));
                if let Some(peer) = peer {
                    self.m.peer_probes += 1;
                    // Like F-Barre's probes, Least's tracker probes are
                    // small control messages on their own traffic class.
                    let at = self.filter_vc[p.chiplet as usize].send(t, PEER_MSG_BYTES);
                    self.queue.push(
                        at,
                        Ev::PeerProbe {
                            page,
                            at: peer as u8,
                        },
                    );
                } else {
                    self.send_ats(page, key, t);
                }
            }
            _ => self.send_ats(page, key, t),
        }
    }

    /// F-Barre local path: find a coalescing VPN in this chiplet's own L2
    /// TLB via the LCF and calculate the requested frame.
    fn try_local_coalesced(
        &mut self,
        chiplet: u8,
        key: TlbKey,
        max_merged: u8,
    ) -> Option<L2Payload> {
        #[cfg(debug_assertions)]
        let allocs_before = self.alloc_probe.map(|f| f());
        let pec_logic = self.pec_logic;
        let coal_mode = self.coal_mode;
        let mut lcf_hits = 0u64;
        let mut found: Option<L2Payload> = None;
        {
            // Borrow split: the PEC entry stays borrowed from the chiplet
            // for the whole enumeration — no clone, no candidate Vec.
            let ch = &self.chiplets[chiplet as usize];
            let filters = ch.filters.as_ref()?;
            let entry = ch.pec_buffer.peek(key.asid, key.vpn)?;
            pec_logic.for_each_candidate(entry, key.vpn, max_merged, |cand| {
                if !filters.lcf_contains(key.asid, cand) {
                    return ControlFlow::Continue(());
                }
                lcf_hits += 1;
                let ckey = TlbKey {
                    asid: key.asid,
                    vpn: cand,
                };
                let Some(payload) = ch.l2_tlb.probe(ckey).copied() else {
                    return ControlFlow::Continue(()); // filter false positive
                };
                let Some(info) = CoalInfo::decode(payload.coal_bits, coal_mode) else {
                    return ControlFlow::Continue(());
                };
                if let Some(pfn) = pec_logic.calc_pfn(cand, payload.pfn, &info, entry, key.vpn) {
                    let bits = member_bits(&pec_logic, cand, &info, entry, key.vpn)
                        .unwrap_or(payload.coal_bits);
                    found = Some(L2Payload {
                        pfn,
                        coal_bits: bits,
                    });
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            });
        }
        self.m.lcf_hits += lcf_hits;
        if found.is_some() {
            self.m.lcf_true_hits += 1;
        }
        #[cfg(debug_assertions)]
        if let (Some(f), Some(before)) = (self.alloc_probe, allocs_before) {
            debug_assert_eq!(
                f(),
                before,
                "F-Barre local probe heap-allocated on the hot path"
            );
        }
        found
    }

    // ----- ATS path -----

    fn send_ats(&mut self, page: u32, key: TlbKey, t: Cycle) {
        let chiplet = self.pages[page as usize].chiplet;
        self.send_ats_inner(chiplet, key, t, false);
    }

    fn send_ats_inner(&mut self, chiplet: u8, key: TlbKey, t: Cycle, prefetch: bool) {
        // Retry layer: every attempt (re)arms a deadline under a fresh
        // epoch; timers for superseded epochs or already-filled keys
        // no-op. The wait doubles per timeout taken, capped.
        // `arm_deadlines` is only set when a retry config exists; the
        // tuple pattern makes that coupling panic-free.
        if let (true, Some(retry)) = (self.arm_deadlines, self.cfg.ats_retry) {
            self.ats_epoch += 1;
            let epoch = self.ats_epoch;
            let e = self.ats_pending.upsert(
                chiplet,
                key,
                PendingAts {
                    attempts: 0,
                    epoch,
                    prefetch,
                },
            );
            e.epoch = epoch;
            e.prefetch = prefetch;
            let wait = retry
                .deadline
                .checked_shl(e.attempts as u32)
                .unwrap_or(Cycle::MAX)
                .min(retry.max_backoff);
            self.queue.push(
                t.saturating_add(wait),
                Ev::AtsDeadline {
                    chiplet,
                    key,
                    epoch,
                },
            );
        }
        // Fault: the request vanishes in flight. The TLP left the
        // chiplet (upstream bandwidth is consumed) but never reaches the
        // translation service, so it is not a serviced request and does
        // not count toward `ats_requests`.
        if self
            .injector
            .as_mut()
            .is_some_and(FaultInjector::drop_request)
        {
            if self.cfg.mmu == MmuKind::Iommu {
                self.pcie_up.send(t, ATS_REQUEST_BYTES);
            }
            return;
        }
        let id = self.req_track.insert(prefetch);
        let req = AtsRequest {
            id,
            asid: key.asid,
            vpn: key.vpn,
            chiplet: ChipletId(chiplet),
            issued_at: t,
        };
        self.m.ats_requests += 1;
        match self.cfg.mmu {
            MmuKind::Iommu => {
                let spike = self.injector.as_mut().map_or(0, FaultInjector::pcie_spike);
                let at = self.pcie_up.send_jittered(t, ATS_REQUEST_BYTES, spike);
                self.queue.push(at, Ev::AtsArrive { req });
            }
            MmuKind::Gmmu => {
                // Walk locally; no PCIe.
                self.queue.push(t, Ev::AtsArrive { req });
            }
        }
    }

    /// An ATS deadline fired. Retry with backoff while attempts remain;
    /// then degrade to the uncoalesced conventional-walk path (the
    /// reliability analogue of the paper's coalesced → conventional
    /// fallback) so a lossy link cannot wedge the chiplet.
    fn ats_deadline(&mut self, chiplet: u8, key: TlbKey, epoch: u64) -> Result<(), SimError> {
        let now = self.now;
        let Some(p) = self.ats_pending.get(chiplet, key) else {
            return Ok(()); // already filled
        };
        if p.epoch != epoch {
            return Ok(()); // superseded by a newer attempt
        }
        // A deadline can only have been armed under a retry config;
        // treat its absence as the timer being disarmed.
        let Some(retry) = self.cfg.ats_retry else {
            return Ok(());
        };
        self.m.ats_timeouts += 1;
        let (attempts, prefetch) = (p.attempts, p.prefetch);
        if attempts < retry.max_retries {
            if let Some(pending) = self.ats_pending.get_mut(chiplet, key) {
                pending.attempts = attempts + 1;
            }
            self.m.ats_retries += 1;
            self.send_ats_inner(chiplet, key, now, prefetch);
            return Ok(());
        }
        self.ats_pending.remove(chiplet, key);
        if self.page_tables[key.asid as usize]
            .lookup(key.vpn)
            .is_none()
        {
            // Unmapped page: with demand paging the far fault maps it
            // (and restarts the ATS cycle); without, it is a genuine
            // translation fault.
            if self.cfg.demand_paging.is_some() {
                return self.page_fault(key.asid, key.vpn, chiplet, now);
            }
            return Err(SimError::TranslationFault {
                asid: key.asid,
                vpn: key.vpn,
            });
        }
        // The fallback is a synchronous slow-path walk over a clean
        // channel: full PCIe round trip plus an uncoalesced walk.
        let done = now + 2 * self.cfg.pcie_latency + self.cfg.walk_latency;
        self.queue.push(done, Ev::FallbackDone { chiplet, key });
        Ok(())
    }

    /// The conventional-walk fallback resolves: fill from the current
    /// PTE with no coalescing bits. Counts as one serviced translation
    /// (`ats_requests`) answered by `fallback_translations`, keeping
    /// `walks + coalesced + fallback == ats_requests`.
    fn fallback_done(&mut self, chiplet: u8, key: TlbKey) {
        let now = self.now;
        let Some(pfn) = self.page_tables[key.asid as usize]
            .lookup(key.vpn)
            .map(|p| p.pfn())
        else {
            return;
        };
        self.m.fallback_translations += 1;
        self.m.ats_requests += 1;
        self.finish_l2_miss_at(chiplet, key, L2Payload { pfn, coal_bits: 0 }, now);
    }

    fn ats_arrive(&mut self, req: AtsRequest) {
        match self.cfg.mmu {
            MmuKind::Iommu => {
                if !self.iommu.enqueue(req) {
                    self.iommu_overflow.push_back(req);
                }
                self.iommu_dispatch();
            }
            MmuKind::Gmmu => {
                let c = req.chiplet.index();
                // GMMU mode guarantees a per-chiplet GMMU; drop the
                // request rather than panic if one is missing.
                let Some(g) = self.chiplets[c].gmmu.as_mut() else {
                    return;
                };
                if !g.enqueue(req) {
                    self.iommu_overflow.push_back(req);
                }
                self.gmmu_dispatch(c);
            }
        }
    }

    fn iommu_dispatch(&mut self) {
        let now = self.now;
        for (ptw, done) in self.iommu.dispatch(now) {
            // Fault: host-side walker stall (DRAM refresh collisions,
            // host memory contention) extends this walk.
            let stall = self
                .injector
                .as_mut()
                .map_or(0, FaultInjector::walker_stall);
            self.queue
                .push(done.saturating_add(stall), Ev::WalkDone { ptw });
        }
    }

    fn gmmu_dispatch(&mut self, c: usize) {
        let now = self.now;
        let Machine {
            chiplets,
            page_tables,
            ..
        } = self;
        let Some(g) = chiplets[c].gmmu.as_mut() else {
            return;
        };
        let started = g.dispatch(now, |asid, vpn| {
            page_tables
                .get(asid as usize)
                .and_then(|pt| pt.lookup(vpn))
                .map(|pte| pte.pfn().chiplet())
        });
        let queue = &mut self.queue;
        let injector = &mut self.injector;
        for (walker, done) in started {
            let stall = injector.as_mut().map_or(0, FaultInjector::walker_stall);
            queue.push(
                done.saturating_add(stall),
                Ev::GmmuWalkDone {
                    chiplet: c as u8,
                    walker,
                },
            );
        }
    }

    fn walk_done(&mut self, ptw: usize) {
        let now = self.now;
        let Machine {
            iommu, page_tables, ..
        } = self;
        let responses = iommu.complete_walk(ptw, now, |asid, vpn| {
            page_tables.get(asid as usize).and_then(|pt| pt.lookup(vpn))
        });
        // Refill the queue from the PCIe overflow buffer.
        while self.iommu.has_queue_space() {
            let Some(r) = self.iommu_overflow.pop_front() else {
                break;
            };
            let accepted = self.iommu.enqueue(r);
            debug_assert!(accepted);
        }
        self.iommu_dispatch();
        for (ready, resp) in responses {
            // Fault: the response vanishes on the downstream link (it
            // still occupies bandwidth). The chiplet's deadline timer
            // recovers via retry/fallback.
            if self
                .injector
                .as_mut()
                .is_some_and(FaultInjector::drop_response)
            {
                self.pcie_down.send(ready, ATS_RESPONSE_BYTES);
                continue;
            }
            let spike = self.injector.as_mut().map_or(0, FaultInjector::pcie_spike);
            let at = self
                .pcie_down
                .send_jittered(ready, ATS_RESPONSE_BYTES, spike);
            self.tracer.span(
                Stage::Ptw,
                ATS_TRACE_ID_BASE.wrapping_add(resp.req.id),
                resp.req.chiplet.0 as u16,
                resp.walk_started_at,
                ready,
            );
            self.queue.push(at, Ev::RespArrive { resp });
        }
    }

    fn gmmu_walk_done(&mut self, chiplet: u8, walker: usize) {
        let now = self.now;
        let c = chiplet as usize;
        let Machine {
            chiplets,
            page_tables,
            ..
        } = self;
        let Some(g) = chiplets[c].gmmu.as_mut() else {
            return;
        };
        let responses = g.complete_walk(walker, now, |asid, vpn| {
            page_tables.get(asid as usize).and_then(|pt| pt.lookup(vpn))
        });
        let mut i = 0;
        while i < self.iommu_overflow.len() {
            let r = self.iommu_overflow[i];
            if r.chiplet.index() == c {
                let Some(g) = self.chiplets[c].gmmu.as_mut() else {
                    break;
                };
                if g.enqueue(r) {
                    self.iommu_overflow.remove(i);
                    continue;
                }
                break;
            }
            i += 1;
        }
        self.gmmu_dispatch(c);
        for (ready, resp) in responses {
            // GMMU responses stay on package (no PCIe spike leg) but a
            // corrupted response is still droppable.
            if self
                .injector
                .as_mut()
                .is_some_and(FaultInjector::drop_response)
            {
                continue;
            }
            self.tracer.span(
                Stage::Ptw,
                ATS_TRACE_ID_BASE.wrapping_add(resp.req.id),
                resp.req.chiplet.0 as u16,
                resp.walk_started_at,
                ready,
            );
            self.queue.push(ready, Ev::RespArrive { resp });
        }
    }

    fn resp_arrive(&mut self, resp: AtsResponse) -> Result<(), SimError> {
        let now = self.now;
        // Full PCIe round trip of this request: L2-miss issue to response
        // arrival. GMMU responses never cross PCIe, so they carry no
        // ats-pcie span.
        if self.cfg.mmu == MmuKind::Iommu {
            self.tracer.span(
                Stage::AtsPcie,
                ATS_TRACE_ID_BASE.wrapping_add(resp.req.id),
                resp.req.chiplet.0 as u16,
                resp.req.issued_at,
                now,
            );
        }
        let Some(pfn) = resp.pfn else {
            return self.page_fault(resp.req.asid, resp.req.vpn, resp.req.chiplet.0, now);
        };
        let chiplet = resp.req.chiplet.index();
        // F-Barre: learn the data's PEC record from the response — unless
        // the fault model corrupts the fill, in which case the incoming
        // record is discarded and a resident one evicted (affected pages
        // fall back to walks until the record is re-learned).
        if let Some(entry) = &resp.pec_entry {
            match self.injector.as_mut().and_then(FaultInjector::corrupt_pec) {
                Some(victim) => {
                    self.chiplets[chiplet].pec_buffer.evict_at(victim as usize);
                }
                None => {
                    self.chiplets[chiplet].pec_buffer.insert(entry.clone());
                }
            }
        }
        let key = TlbKey {
            asid: resp.req.asid,
            vpn: resp.req.vpn,
        };
        // Unknown ids (e.g. the IOMMU's synthetic multicast ids) miss
        // the slab and count as demand, exactly like the old map miss.
        let was_prefetch = self.req_track.take(resp.req.id).unwrap_or(false);
        // A response walked before a migration can arrive after it; the
        // IOMMU's invalidation makes such fills stale. Detect and retry
        // (the MSHR entry is still pending).
        let current = self.page_tables[key.asid as usize]
            .lookup(key.vpn)
            .map(|p| p.pfn());
        if current != Some(pfn) {
            self.send_ats_inner(chiplet as u8, key, now, was_prefetch);
            return Ok(());
        }
        // Prefetch and demand responses fill identically: a prefetch's
        // MSHR simply has no waiters.
        self.finish_l2_miss_at(
            chiplet as u8,
            key,
            L2Payload {
                pfn,
                coal_bits: resp.coal_bits,
            },
            now,
        );
        Ok(())
    }

    /// Demand-paging far fault (§VI): the driver maps the faulting page —
    /// or, under group fetch, its whole coalescing group — and the
    /// translation retries after the fault latency.
    ///
    /// # Errors
    ///
    /// [`SimError::TranslationFault`] when demand paging is disabled
    /// (premapped workloads never fault legitimately),
    /// [`SimError::VpnOutsidePlan`] when no data object owns the VPN,
    /// [`SimError::OutOfFrames`] when physical memory is exhausted.
    fn page_fault(&mut self, asid: u16, vpn: Vpn, chiplet: u8, now: Cycle) -> Result<(), SimError> {
        let Some(dp) = self.cfg.demand_paging else {
            return Err(SimError::TranslationFault { asid, vpn });
        };
        self.m.page_faults += 1;
        // A concurrent fault may already have mapped it.
        if self.page_tables[asid as usize].lookup(vpn).is_none() {
            let group_fetch = dp.group_fetch && self.cfg.mode.uses_barre();
            let plan = self
                .plans
                .iter()
                .find(|p| p.asid == asid && p.range.contains(vpn))
                .cloned()
                .ok_or(SimError::VpnOutsidePlan { asid, vpn })?;
            let ptes = self
                .driver
                .allocate_on_fault(&plan, vpn, &mut self.frames, group_fetch)
                .map_err(|e| match e {
                    barre_core::driver::AllocError::OutOfMemory(c) => {
                        SimError::OutOfFrames { chiplet: c.0 }
                    }
                    barre_core::driver::AllocError::VpnOutsidePlan { asid, vpn } => {
                        SimError::VpnOutsidePlan { asid, vpn }
                    }
                })?;
            for (v, pte) in ptes {
                // Group fetch can touch members another fault already
                // mapped; keep the first mapping.
                if self.page_tables[asid as usize].lookup(v).is_none() {
                    self.page_tables[asid as usize].map(v, pte);
                    self.m.demand_pages_mapped += 1;
                }
            }
        }
        let key = TlbKey { asid, vpn };
        self.send_ats_inner(chiplet, key, now + dp.fault_latency, false);
        Ok(())
    }

    // ----- peer sharing -----

    fn peer_probe(&mut self, page: u32, at: u8) {
        let now = self.now;
        let p = self.pages[page as usize].clone();
        let key = TlbKey {
            asid: p.asid,
            vpn: p.vpn,
        };
        let reply_ready = now + 1 + self.cfg.l2_tlb_latency + CHIPLET_PEC_CALC;
        let result: Option<L2Payload> = match self.cfg.mode {
            TranslationMode::Least => self.chiplets[at as usize].l2_tlb.probe(key).copied(),
            _ => {
                // F-Barre peer-side translation: exact entry, else any
                // coalescing VPN present locally.
                let exact = self.chiplets[at as usize].l2_tlb.probe(key).copied();
                exact.or_else(|| self.peer_calculate(at, key))
            }
        };
        let back = match self.cfg.mode {
            TranslationMode::FBarre(f) if f.oracle_traffic => reply_ready + self.cfg.mesh_latency,
            TranslationMode::FBarre(_) => {
                self.filter_vc[at as usize].send(reply_ready, PEER_MSG_BYTES)
            }
            // Least's replies ride the control class too.
            _ => self.filter_vc[at as usize].send(reply_ready, PEER_MSG_BYTES),
        };
        self.queue.push(back, Ev::PeerReply { page, result });
    }

    fn peer_calculate(&mut self, at: u8, key: TlbKey) -> Option<L2Payload> {
        #[cfg(debug_assertions)]
        let allocs_before = self.alloc_probe.map(|f| f());
        let max_merged = self.cfg.mode.max_merged();
        let pec_logic = self.pec_logic;
        let coal_mode = self.coal_mode;
        let mut found: Option<L2Payload> = None;
        {
            let ch = &self.chiplets[at as usize];
            let entry = ch.pec_buffer.peek(key.asid, key.vpn)?;
            pec_logic.for_each_candidate(entry, key.vpn, max_merged, |cand| {
                if let Some(fb) = &ch.filters {
                    if !fb.lcf_contains(key.asid, cand) {
                        return ControlFlow::Continue(());
                    }
                }
                let ckey = TlbKey {
                    asid: key.asid,
                    vpn: cand,
                };
                let Some(payload) = ch.l2_tlb.probe(ckey).copied() else {
                    return ControlFlow::Continue(());
                };
                let Some(info) = CoalInfo::decode(payload.coal_bits, coal_mode) else {
                    return ControlFlow::Continue(());
                };
                if let Some(pfn) = pec_logic.calc_pfn(cand, payload.pfn, &info, entry, key.vpn) {
                    let bits = member_bits(&pec_logic, cand, &info, entry, key.vpn)
                        .unwrap_or(payload.coal_bits);
                    found = Some(L2Payload {
                        pfn,
                        coal_bits: bits,
                    });
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            });
        }
        #[cfg(debug_assertions)]
        if let (Some(f), Some(before)) = (self.alloc_probe, allocs_before) {
            debug_assert_eq!(
                f(),
                before,
                "F-Barre peer-calculate heap-allocated on the hot path"
            );
        }
        found
    }

    fn peer_reply(&mut self, page: u32, result: Option<L2Payload>) {
        let now = self.now;
        let p = self.pages[page as usize].clone();
        let key = TlbKey {
            asid: p.asid,
            vpn: p.vpn,
        };
        let current = self.page_tables[key.asid as usize]
            .lookup(key.vpn)
            .map(|pte| pte.pfn());
        match result {
            Some(payload) if current == Some(payload.pfn) => {
                if matches!(self.cfg.mode, TranslationMode::FBarre(_)) {
                    self.m.rcf_remote_hits += 1;
                }
                self.m.intra_mcm_translations += 1;
                self.finish_l2_miss_at(p.chiplet, key, payload, now);
            }
            _ => {
                self.m.peer_probe_nacks += 1;
                self.send_ats(page, key, now);
            }
        }
    }

    // ----- fills -----

    fn fill_l1(&mut self, chiplet: u8, cu: u16, key: TlbKey, pfn: GlobalPfn) {
        let idx = self.cfg.topology.cu_index_flat(cu);
        self.chiplets[chiplet as usize].l1_tlbs[idx].insert(key, pfn);
    }

    /// Completes an outstanding L2 miss: fills the L2 TLB (with filter and
    /// tracker maintenance), wakes every merged waiter.
    fn finish_l2_miss_at(&mut self, chiplet: u8, key: TlbKey, payload: L2Payload, t: Cycle) {
        // Every fill — walked, IOMMU-calculated, or chiplet-calculated —
        // must agree with the page table. A fill computed before a page
        // migration can arrive after it (or be calculated from an
        // in-flight payload whose bitmap predates the exclusion); the
        // shootdown protocol turns those into retries.
        let current = self.page_tables[key.asid as usize]
            .lookup(key.vpn)
            .map(|p| p.pfn());
        if current != Some(payload.pfn) {
            self.send_ats_inner(chiplet, key, t, false);
            return;
        }
        // The key is answered: retire any outstanding retry state so
        // in-flight deadline timers become stale no-ops.
        self.ats_pending.remove(chiplet, key);
        let c = chiplet as usize;
        let evicted = match &mut self.shared_l2 {
            Some(shared) => shared.insert(key, payload),
            None => self.chiplets[c].l2_tlb.insert(key, payload),
        };
        self.after_l2_insert(chiplet, key, payload, t);
        if let Some((ekey, epayload)) = evicted {
            self.after_l2_evict(chiplet, ekey, epayload, t);
        }
        let waiters = self.chiplets[c].l2_mshr.complete(key);
        for w in waiters.into_iter().flatten() {
            let p = self.pages[w as usize].clone();
            self.fill_l1(p.chiplet, p.cu, key, payload.pfn);
            self.pages[w as usize].pfn = Some(payload.pfn);
            // Per-waiter fill span (miss to wake) plus the whole-journey
            // span; prefetch fills have no waiters and trace nothing.
            self.tracer
                .span(Stage::Fill, p.trace_id, p.chiplet as u16, p.miss_at, t);
            self.tracer
                .span(Stage::CuIssue, p.trace_id, p.chiplet as u16, p.issued_at, t);
            self.queue.push(t, Ev::MemStart { page: w });
        }
    }

    fn after_l2_insert(&mut self, chiplet: u8, key: TlbKey, payload: L2Payload, t: Cycle) {
        if matches!(self.cfg.mode, TranslationMode::Least) {
            let fkey = barre_core::fbarre::filter_key(key.asid, key.vpn);
            self.least_trackers[chiplet as usize].insert(fkey);
        }
        if self.chiplets[chiplet as usize].filters.is_some() {
            if let Some(f) = &mut self.chiplets[chiplet as usize].filters {
                f.lcf_insert(key.asid, key.vpn);
            }
            self.broadcast_filter_updates(chiplet, key, payload, FilterCmd::Add, t);
        }
    }

    fn after_l2_evict(&mut self, chiplet: u8, key: TlbKey, payload: L2Payload, t: Cycle) {
        if matches!(self.cfg.mode, TranslationMode::Least) {
            let fkey = barre_core::fbarre::filter_key(key.asid, key.vpn);
            self.least_trackers[chiplet as usize].remove(fkey);
        }
        if self.chiplets[chiplet as usize].filters.is_some() {
            if let Some(f) = &mut self.chiplets[chiplet as usize].filters {
                f.lcf_remove(key.asid, key.vpn);
            }
            self.broadcast_filter_updates(chiplet, key, payload, FilterCmd::Delete, t);
        }
    }

    /// Advertises (or retracts) a TLB entry's exact VPN plus all its
    /// coalescing VPNs in the sharer peers' RCFs, best effort.
    fn broadcast_filter_updates(
        &mut self,
        chiplet: u8,
        key: TlbKey,
        payload: L2Payload,
        cmd: FilterCmd,
        t: Cycle,
    ) {
        let Some(info) = CoalInfo::decode(payload.coal_bits, self.coal_mode) else {
            return;
        };
        // Reused scratch buffers: after warm-up this path performs no
        // heap allocation besides the batched event payloads it queues.
        let pec_logic = self.pec_logic;
        let mut members = std::mem::take(&mut self.scratch_members);
        members.clear();
        {
            let ch = &self.chiplets[chiplet as usize];
            if let Some(entry) = ch.pec_buffer.peek(key.asid, key.vpn) {
                // Which VPN anchors the member enumeration: the entry itself.
                pec_logic.for_each_member(key.vpn, &info, entry, |m| {
                    members.push(m);
                    ControlFlow::Continue(())
                });
            }
        }
        if members.is_empty() {
            self.scratch_members = members;
            return;
        }
        let mut peers = std::mem::take(&mut self.scratch_peers);
        peers.clear();
        peers.extend(members.iter().map(|m| m.chiplet).filter(|c| c.0 != chiplet));
        peers.sort_unstable();
        peers.dedup();
        let oracle = matches!(self.cfg.mode, TranslationMode::FBarre(f) if f.oracle_traffic);
        for &peer in &peers {
            // One batched message per peer carries the whole group's
            // advertisement (n × 43-bit records in a single mesh packet).
            self.m.filter_updates_sent += members.len() as u64;
            let bytes = 4 + FILTER_UPDATE_BYTES * members.len() as u64;
            let at = if oracle {
                t + self.cfg.mesh_latency
            } else {
                let vc = &mut self.filter_vc[chiplet as usize];
                if vc.backlog(t) > FILTER_DROP_BACKLOG {
                    self.m.filter_updates_dropped += members.len() as u64;
                    continue;
                }
                vc.send(t, bytes)
            };
            // Inline-array batches; a group larger than FILTER_BATCH_MAX
            // is split into consecutive same-cycle events, which the peer
            // applies back-to-back in the original order.
            for chunk in members.chunks(FILTER_BATCH_MAX) {
                let mut batch = FilterBatch {
                    cmd,
                    sender: ChipletId(chiplet),
                    asid: key.asid,
                    len: chunk.len() as u8,
                    vpns: [Vpn(0); FILTER_BATCH_MAX],
                };
                for (slot, m) in batch.vpns.iter_mut().zip(chunk) {
                    *slot = m.vpn;
                }
                self.queue.push(at, Ev::FilterUpd { at: peer.0, batch });
            }
        }
        self.scratch_members = members;
        self.scratch_peers = peers;
    }

    // ----- data access -----

    fn mem_start(&mut self, page: u32) {
        let now = self.now;
        let p = self.pages[page as usize].clone();
        // Translation always precedes the data access; an untranslated
        // page here is an event-ordering bug — drop the access.
        let Some(pfn) = p.pfn else {
            return;
        };
        // The page may have migrated while this access was in flight
        // (its TLB entry was shot down, but the access already held the
        // frame). Re-translate instead of touching the stale frame —
        // and, crucially, instead of feeding the migration engine a
        // stale home that it would "migrate" (and double-free) again.
        if self.cfg.migration.is_some() {
            let current = self.page_tables[p.asid as usize]
                .lookup(p.vpn)
                .map(|e| e.pfn());
            if current != Some(pfn) {
                self.queue.push(now, Ev::Translate { page });
                return;
            }
        }
        // Migration engine observes every data access.
        if self.acud.is_some() {
            if let Some(done) = self.try_migration(&p, pfn, now) {
                // The access restarts after migration (retranslate: the
                // page moved, TLBs were shot down).
                self.queue.push(done, Ev::Translate { page });
                return;
            }
        }
        self.m.data_accesses += 1;
        let paddr = barre_mem::PhysAddr(
            (pfn.0 << self.page_shift) | (p.page_off & ((1 << self.page_shift) - 1)),
        );
        let home = pfn.chiplet();
        let local = home.0 == p.chiplet;
        let cu_idx = self.cfg.topology.cu_index_flat(p.cu);
        let l1_hit = self.chiplets[p.chiplet as usize].l1d[cu_idx].access(paddr);
        if l1_hit {
            self.queue
                .push(now + self.cfg.l1d_latency, Ev::MemDone { page });
            return;
        }
        let t_req = if local {
            now + self.cfg.l1d_latency
        } else {
            self.m.remote_data_accesses += 1;
            // Stores carry the line with the request; loads send a small
            // request and fetch the line on the reply.
            let req_bytes = if p.write {
                self.cfg.line_bytes
            } else {
                self.cfg.line_bytes / 2
            };
            self.mesh.send(
                now + self.cfg.l1d_latency,
                ChipletId(p.chiplet),
                home,
                req_bytes,
            )
        };
        let l2_hit = self.chiplets[home.index()].l2d.access(paddr);
        let t_data = if l2_hit {
            t_req + self.cfg.l2d_latency
        } else {
            // DRAM channel occupancy: only the line transfer holds the
            // channel; the L2D lookup and DRAM access latencies pipeline.
            let ch = &mut self.chiplets[home.index()];
            let start = t_req.max(ch.dram_free);
            let ser = (self.cfg.line_bytes / self.cfg.dram_bytes_per_cycle).max(1);
            ch.dram_free = start + ser;
            start + ser + self.cfg.l2d_latency + self.cfg.dram_latency
        };
        let t_done = if local {
            t_data
        } else {
            let reply_bytes = if p.write { 8 } else { self.cfg.line_bytes };
            self.mesh
                .send(t_data, home, ChipletId(p.chiplet), reply_bytes)
        };
        self.queue.push(t_done, Ev::MemDone { page });
    }

    /// Checks ACUD counters; performs a migration when triggered. Returns
    /// the cycle the migration completes (the triggering access then
    /// retries), or `None` when no migration happens.
    fn try_migration(&mut self, p: &PageReq, pfn: GlobalPfn, now: Cycle) -> Option<Cycle> {
        let acud = self.acud.as_mut()?;
        let decision = acud.record(p.asid, p.vpn, ChipletId(p.chiplet), pfn.chiplet())?;
        // Destination must have a free frame.
        let local = self.frames[decision.to.index()].alloc_any()?;
        let acud = self.acud.as_mut()?;
        acud.migrated(p.asid, p.vpn);
        self.m.migrations += 1;
        let old = pfn;
        let new = GlobalPfn::compose(decision.to, local);
        self.frames[old.chiplet().index()].free(old.local());
        // Rewrite the PTE: new frame, excluded from its coalescing group.
        self.page_tables[p.asid as usize].update(p.vpn, |pte| pte.with_pfn(new).with_coal_bits(0));
        // Remaining group members drop the leaving chiplet from their
        // bitmaps (§VI). Their cached translations still carry the old
        // bitmap, so the shootdown must cover the whole group — a member
        // entry left in a TLB could otherwise calculate the migrated
        // page's *old* frame.
        let group = self.exclude_from_group(p.asid, p.vpn, old.chiplet());
        for vpn in group.into_iter().chain(std::iter::once(p.vpn)) {
            let key = TlbKey { asid: p.asid, vpn };
            for c in 0..self.chiplets.len() {
                let evicted = self.chiplets[c].l2_tlb.invalidate(key);
                if let Some(epayload) = evicted {
                    self.after_l2_evict(c as u8, key, epayload, now);
                }
                for l1 in &mut self.chiplets[c].l1_tlbs {
                    l1.invalidate(key);
                }
            }
            if let Some(shared) = &mut self.shared_l2 {
                shared.invalidate(key);
            }
            self.iommu.invalidate(p.asid, vpn);
        }
        // Invalidate cached lines of the old frame.
        let page_bytes = 1u64 << self.page_shift;
        let old_base = barre_mem::PhysAddr(old.0 << self.page_shift);
        let old_end = barre_mem::PhysAddr((old.0 << self.page_shift) + page_bytes);
        for ch in &mut self.chiplets {
            ch.l2d.invalidate_range(old_base, old_end);
        }
        // Copy cost: the page crosses the mesh, plus fixed overhead.
        let copy_done = self.mesh.send(now, old.chiplet(), decision.to, page_bytes);
        let overhead = self.cfg.migration.map(|mc| mc.overhead).unwrap_or(0);
        Some(copy_done + overhead)
    }

    /// Clears `leaving`'s participation bit in every remaining member of
    /// the coalescing group containing `(asid, vpn)`; returns the member
    /// VPNs so the caller can shoot their translations down.
    fn exclude_from_group(&mut self, asid: u16, vpn: Vpn, leaving: ChipletId) -> Vec<Vpn> {
        let Some(entry) = self
            .master_pecs
            .iter()
            .find(|e| e.contains(asid, vpn))
            .cloned()
        else {
            return Vec::new();
        };
        // Use any member's PTE to enumerate the group.
        let Some(pte) = self.page_tables[asid as usize].lookup(vpn) else {
            return Vec::new();
        };
        let Some(info) = CoalInfo::decode(pte.coal_bits(), self.coal_mode) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for m in self.pec_logic.members(vpn, &info, &entry) {
            if m.vpn == vpn {
                continue;
            }
            out.push(m.vpn);
            self.page_tables[asid as usize].update(m.vpn, |p| {
                let bits = CoalInfo::decode(p.coal_bits(), self.coal_mode)
                    .map(|i| i.exclude(leaving))
                    .map(|i| if i.is_coalesced() { i.encode() } else { 0 })
                    .unwrap_or(0);
                p.with_coal_bits(bits)
            });
        }
        out
    }

    fn mem_done(&mut self, page: u32) {
        let now = self.now;
        self.last_progress = now;
        let p = self.pages[page as usize].clone();
        self.free_page(page);
        let inst = &mut self.insts[p.inst as usize];
        inst.pages_left -= 1;
        if inst.pages_left == 0 {
            let (chiplet, cu, slot) = (inst.chiplet, inst.cu, inst.slot);
            self.free_inst(p.inst);
            // Compute gap before the stream's next memory instruction,
            // plus a small deterministic per-warp jitter (instruction-mix
            // variation). Without it, streams served by synchronized
            // fills phase-lock into convoys that leave the PTWs idle
            // between bursts — real warp schedulers never do.
            let stream = self.cus[chiplet as usize][cu as usize].slots[slot as usize].as_ref();
            let (gap, warps) = stream
                .map(|s| (s.pattern.insns_per_access(), s.warps))
                .unwrap_or((10, 0));
            let mix = (chiplet as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((cu as u64) << 17)
                .wrapping_add((slot as u64) << 9)
                .wrapping_add(warps)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let jitter = mix % (gap / 2 + 8);
            self.queue
                .push(now + gap + jitter, Ev::Issue { chiplet, cu, slot });
        }
    }

    // ----- slabs -----

    fn alloc_inst(&mut self, inst: WarpInst) -> u32 {
        match self.free_insts.pop() {
            Some(i) => {
                self.insts[i as usize] = inst;
                i
            }
            None => {
                self.insts.push(inst);
                (self.insts.len() - 1) as u32
            }
        }
    }

    fn free_inst(&mut self, i: u32) {
        self.free_insts.push(i);
    }

    fn alloc_page(&mut self, p: PageReq) -> u32 {
        match self.free_pages.pop() {
            Some(i) => {
                self.pages[i as usize] = p;
                i
            }
            None => {
                self.pages.push(p);
                (self.pages.len() - 1) as u32
            }
        }
    }

    fn free_page(&mut self, i: u32) {
        self.free_pages.push(i);
    }

    // ----- finalization -----

    /// Copies component statistics into `self.m`. Idempotent (every
    /// field is assigned, not accumulated), so both the clean-finish and
    /// the watchdog-abort paths can call it.
    fn harvest(&mut self) {
        self.m.total_cycles = self.now;
        self.m.events_processed = self.queue.processed();
        let io = self.iommu.stats();
        self.m.walks = io.walks.get();
        self.m.coalesced_translations = io.coalesced.get();
        self.m.ats_latency = io.ats_latency.clone();
        self.m.vpn_gap = io.vpn_gap.clone();
        self.m.gmmu_local_walks = 0;
        self.m.gmmu_remote_walks = 0;
        for ch in &self.chiplets {
            if let Some(g) = &ch.gmmu {
                self.m.walks += g.local_walks.get() + g.remote_walks.get();
                self.m.gmmu_local_walks += g.local_walks.get();
                self.m.gmmu_remote_walks += g.remote_walks.get();
                self.m.coalesced_translations += g.coalesced.get();
            }
        }
        self.m.ptw_busy_cycles = io.ptw_busy.get();
        self.m.pw_queue_rejections = io.queue_rejections.get();
        self.m.pcie_bytes = self.pcie_up.total_bytes() + self.pcie_down.total_bytes();
        self.m.mesh_bytes =
            self.mesh.total_bytes() + self.filter_vc.iter().map(Link::total_bytes).sum::<u64>();
        self.m.faults_injected = self.injector.as_ref().map_or(0, |i| i.counts().total());
    }

    fn finalize(mut self) -> RunMetrics {
        self.harvest();
        self.m
    }
}

/// Events between conservation-law checks (sanitizer builds) and
/// tracer time-series samples — one cadence so a traced sanitizer run
/// lines the two up.
const SANITIZER_EPOCH: u64 = 65_536;

#[cfg(feature = "sanitizer")]
impl Machine {
    /// Translations serviced so far — walks, coalesced calculations, and
    /// fallback walks — from live counters (harvest-equivalent).
    fn serviced_translations(&self) -> u64 {
        let io = self.iommu.stats();
        let mut serviced = io.walks.get() + io.coalesced.get() + self.m.fallback_translations;
        for ch in &self.chiplets {
            if let Some(g) = &ch.gmmu {
                serviced += g.local_walks.get() + g.remote_walks.get() + g.coalesced.get();
            }
        }
        serviced
    }

    /// Evaluates every conservation law against the machine's current
    /// state. `at_drain` upgrades the translation law from `<=` to exact
    /// equality (mid-run, serviced requests lag issued ones).
    pub fn conservation_violations(&self, at_drain: bool) -> Vec<crate::sanitizer::Violation> {
        use crate::sanitizer::Violation;
        let cycle = self.now;
        let mut v = Vec::new();

        // Law 1: translation conservation. An IOMMU TLB services
        // requests without a counted walk and speculative multicast
        // services requests that were never issued; both decouple the
        // two sides, so the law only holds with them off.
        if self.cfg.iommu_tlb.is_none() && !self.cfg.barre_multicast {
            let serviced = self.serviced_translations();
            let requests = self.m.ats_requests;
            let broken = if at_drain {
                serviced != requests
            } else {
                serviced > requests
            };
            if broken {
                v.push(Violation {
                    law: "translation-conservation",
                    detail: format!(
                        "serviced {serviced} (walks + coalesced + fallback) vs \
                         {requests} ats_requests{}",
                        if at_drain {
                            " at drain (must be equal)"
                        } else {
                            ""
                        }
                    ),
                    cycle,
                });
            }
        }

        // Law 2: frame accounting — the allocator's bitmap and its
        // cached free counter must agree with capacity.
        for (i, f) in self.frames.iter().enumerate() {
            let allocated = f.allocated_frames();
            if allocated + f.free_frames() != f.capacity() as u64 {
                v.push(Violation {
                    law: "frame-accounting",
                    detail: format!(
                        "chiplet {i}: allocated {allocated} + free {} != capacity {}",
                        f.free_frames(),
                        f.capacity()
                    ),
                    cycle,
                });
            }
        }

        // Law 3: MSHR bounds — in-flight misses within the register file.
        for (i, ch) in self.chiplets.iter().enumerate() {
            let (in_use, cap) = (ch.l2_mshr.in_use(), ch.l2_mshr.capacity());
            if in_use > cap {
                v.push(Violation {
                    law: "mshr-bounds",
                    detail: format!(
                        "chiplet {i}: {in_use} in-flight misses exceed {cap} registers"
                    ),
                    cycle,
                });
            }
        }

        // Law 4: link accounting — serialization takes at least one
        // cycle per message and at least bytes/bandwidth cycles overall.
        let mut check_link = |name: String, l: &Link| {
            let (msgs, busy, bytes) = (l.total_msgs(), l.busy_cycles(), l.total_bytes());
            if msgs > busy || bytes > busy.saturating_mul(l.bytes_per_cycle()) {
                v.push(Violation {
                    law: "link-accounting",
                    detail: format!(
                        "{name}: msgs={msgs} bytes={bytes} busy_cycles={busy} \
                         bytes_per_cycle={}",
                        l.bytes_per_cycle()
                    ),
                    cycle,
                });
            }
        };
        check_link("pcie-up".to_string(), &self.pcie_up);
        check_link("pcie-down".to_string(), &self.pcie_down);
        for (i, l) in self.filter_vc.iter().enumerate() {
            check_link(format!("filter-vc[{i}]"), l);
        }
        v
    }

    /// One epoch check: records violations and `debug_assert!`s clean,
    /// dumping the structured report on failure.
    fn sanitizer_check(&mut self, at_drain: bool) {
        self.san.epochs_checked += 1;
        let found = self.conservation_violations(at_drain);
        if !found.is_empty() {
            self.san.violations.extend(found);
            debug_assert!(false, "{}", self.san.render());
        }
    }

    /// Violations recorded so far (release sanitizer builds accumulate
    /// instead of asserting).
    pub fn sanitizer_report(&self) -> &crate::sanitizer::SanitizerReport {
        &self.san
    }

    /// Test hook: fabricates a serviced translation that answers no ATS
    /// request — the accounting-bug shape the sanitizer exists to catch.
    #[doc(hidden)]
    pub fn sanitizer_inject_accounting_skew(&mut self) {
        self.m.fallback_translations += 1;
    }
}

/// Extension used by the machine to flatten CU ids (CU index within a
/// chiplet).
trait TopoExt {
    fn cu_index_flat(&self, cu: u16) -> usize;
}

impl TopoExt for barre_gpu::Topology {
    fn cu_index_flat(&self, cu: u16) -> usize {
        cu as usize
    }
}
