//! System configuration (Table II) and translation-mode selection.

use barre_gpu::Topology;
use barre_mapping::PolicyKind;
use barre_mem::PageSize;
use barre_sim::{Cycle, FaultPlan};

use crate::error::SimError;

/// F-Barre feature toggles (the §VII-D breakdown and §VII-E oracle are
/// expressed by switching these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FBarreConfig {
    /// Group-expansion limit: 1 = `F-Barre-NoMerge`, 2/4 = the merged
    /// variants of Fig 15.
    pub max_merged: u8,
    /// Coalescing-aware PTW scheduling (§V-C).
    pub ptw_sched: bool,
    /// Intra-MCM translation through LCF/RCF sharing (§V-A).
    pub peer_sharing: bool,
    /// Fig 19's oracle: coalescing-information sharing at fixed latency
    /// without consuming mesh bandwidth.
    pub oracle_traffic: bool,
    /// Cuckoo-filter rows per LCF/RCF (Table II: 256; Fig 17b sweeps
    /// 512/1024).
    pub filter_rows: usize,
}

impl Default for FBarreConfig {
    fn default() -> Self {
        Self {
            max_merged: 2,
            ptw_sched: true,
            peer_sharing: true,
            oracle_traffic: false,
            filter_rows: 256,
        }
    }
}

/// Which translation architecture the machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranslationMode {
    /// Private L1/L2 TLBs, plain IOMMU walks.
    #[default]
    Baseline,
    /// Valkyrie (PACT'20): intra-chiplet peer-L1 probing + next-VPN L2
    /// TLB prefetch.
    Valkyrie,
    /// Least (MICRO'21): inter-chiplet L2 TLB sharing guided by ideal
    /// 1024-entry trackers.
    Least,
    /// The hypothetical MCM-wide shared L2 TLB of §III-C/D (4× entries,
    /// no added latency).
    SharedL2Ideal,
    /// Barre: PEC calculation in the IOMMU only (§IV).
    Barre,
    /// Full Barre (§V).
    FBarre(FBarreConfig),
}

impl TranslationMode {
    /// Whether PTEs carry coalescing bits under this mode.
    pub fn uses_barre(&self) -> bool {
        matches!(self, TranslationMode::Barre | TranslationMode::FBarre(_))
    }

    /// The group-expansion limit in force.
    pub fn max_merged(&self) -> u8 {
        match self {
            TranslationMode::FBarre(f) => f.max_merged,
            _ => 1,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            TranslationMode::Baseline => "baseline".into(),
            TranslationMode::Valkyrie => "Valkyrie".into(),
            TranslationMode::Least => "Least".into(),
            TranslationMode::SharedL2Ideal => "shared-L2(ideal)".into(),
            TranslationMode::Barre => "Barre".into(),
            TranslationMode::FBarre(f) => {
                if f.max_merged <= 1 {
                    "F-Barre-NoMerge".into()
                } else {
                    format!("F-Barre-{}Merge", f.max_merged)
                }
            }
        }
    }
}

/// How translations leave the chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MmuKind {
    /// Host IOMMU over PCIe (the paper's baseline, following refs 8 and 27).
    #[default]
    Iommu,
    /// Per-chiplet GMMUs over a distributed page table (MGvm, §VII-F).
    Gmmu,
}

/// On-demand paging configuration (§VI "Support for on-demand paging").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandPagingConfig {
    /// Far-fault handling latency in cycles (GPU page faults cost tens of
    /// microseconds; 20 µs at 1 GHz by default).
    pub fault_latency: Cycle,
    /// Fetch the whole coalescing group on a fault (§VI: "pages will be
    /// fetched/evicted in the unit of coalescing groups"); `false` maps
    /// only the faulting page.
    pub group_fetch: bool,
}

impl Default for DemandPagingConfig {
    fn default() -> Self {
        Self {
            fault_latency: 20_000,
            group_fetch: true,
        }
    }
}

/// Page migration configuration (§VII-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// ACUD remote-access threshold (paper: 16).
    pub threshold: u32,
    /// Fixed migration overhead in cycles on top of the page copy
    /// (fault handling, TLB shootdown round).
    pub overhead: Cycle,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self {
            threshold: 16,
            overhead: 2_000,
        }
    }
}

/// ATS timeout/retry with capped exponential backoff (the graceful-
/// degradation layer the fault model exercises). A request outstanding
/// past `deadline` cycles is retried; the wait doubles per attempt up to
/// `max_backoff`; after `max_retries` retries the chiplet gives up on
/// ATS for that page and resolves it through the uncoalesced
/// conventional-walk fallback path.
///
/// Deadline timers are only armed when the active [`FaultPlan`] can
/// actually lose or delay ATS traffic — on a fault-free run the retry
/// machinery schedules no events, preserving cycle identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtsRetryConfig {
    /// Cycles an ATS request may stay outstanding before the first retry.
    pub deadline: Cycle,
    /// Retries before degrading to the conventional-walk fallback.
    pub max_retries: u8,
    /// Cap on the exponentially growing retry deadline.
    pub max_backoff: Cycle,
}

impl Default for AtsRetryConfig {
    fn default() -> Self {
        Self {
            // Generous vs. the ~800-cycle fault-free ATS turnaround
            // (PCIe RTT + walk + queueing): spurious timeouts are rare
            // even under load, real losses are detected quickly.
            deadline: 4_000,
            max_retries: 3,
            max_backoff: 32_000,
        }
    }
}

/// Full machine configuration. Defaults reproduce Table II.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Package structure.
    pub topology: Topology,
    /// Translation granule.
    pub page_size: PageSize,
    /// Page mapping / CTA scheduling policy.
    pub policy: PolicyKind,
    /// Translation architecture.
    pub mode: TranslationMode,
    /// IOMMU vs GMMU platform.
    pub mmu: MmuKind,

    /// L1 TLB entries per CU (64, fully associative).
    pub l1_tlb_entries: usize,
    /// L1 TLB lookup latency.
    pub l1_tlb_latency: Cycle,
    /// L2 TLB entries per chiplet (512).
    pub l2_tlb_entries: usize,
    /// L2 TLB associativity (16).
    pub l2_tlb_ways: usize,
    /// L2 TLB lookup latency (10).
    pub l2_tlb_latency: Cycle,
    /// L2 TLB MSHRs (16; Fig 4 sweeps this).
    pub l2_tlb_mshrs: usize,

    /// Page table walkers (16; `None` = infinite, Fig 1).
    pub ptws: Option<usize>,
    /// PW-queue entries (48).
    pub pw_queue_entries: usize,
    /// Page-walk latency (500).
    pub walk_latency: Cycle,
    /// Optional IOMMU TLB `(entries, ways, latency)` (§VII-J).
    pub iommu_tlb: Option<(usize, usize, Cycle)>,
    /// PEC buffer entries (Table II: 5).
    pub pec_buffer_entries: usize,
    /// Speculative multicast of calculated PFNs (§IV-B ablation; the
    /// paper's chosen design leaves this off).
    pub barre_multicast: bool,

    /// PCIe propagation latency (150).
    pub pcie_latency: Cycle,
    /// PCIe bandwidth in bytes/cycle (Gen4 x16 ≈ 32 GB/s ⇒ 32 B/cy).
    pub pcie_bytes_per_cycle: u64,
    /// Mesh hop latency (32).
    pub mesh_latency: Cycle,
    /// Aggregate mesh bandwidth in bytes/cycle (768).
    pub mesh_bytes_per_cycle: u64,
    /// DRAM latency (100 ns = 100 cycles).
    pub dram_latency: Cycle,
    /// DRAM bandwidth per chiplet in bytes/cycle (1 TB/s ⇒ 1000).
    pub dram_bytes_per_cycle: u64,

    /// L1 data cache bytes per CU (16 KiB).
    pub l1d_bytes: u64,
    /// L1 data cache hit latency.
    pub l1d_latency: Cycle,
    /// L2 data cache bytes per chiplet (2 MiB).
    pub l2d_bytes: u64,
    /// L2 data cache hit latency.
    pub l2d_latency: Cycle,
    /// Cache line bytes (64).
    pub line_bytes: u64,

    /// Concurrent CTA streams per CU (warp-slot MLP).
    pub cu_slots: usize,
    /// Page migration, when enabled.
    pub migration: Option<MigrationConfig>,
    /// On-demand paging; `None` premaps everything before launch (the
    /// paper's default, following [8], [20], [27]).
    pub demand_paging: Option<DemandPagingConfig>,
    /// Physical frames per chiplet; `None` sizes automatically from the
    /// workload footprint.
    pub frames_per_chiplet: Option<usize>,
    /// Random seed (workload address streams, filter hashes).
    pub seed: u64,
    /// Safety cap on simulated warp memory instructions per CTA stream
    /// (`None` = run to completion).
    pub max_warps_per_cta: Option<u64>,
    /// Faults to inject during the run (default: none).
    pub fault_plan: FaultPlan,
    /// ATS timeout/retry/fallback; `None` disables the recovery layer
    /// (faulted runs then surface as a watchdog diagnostic).
    pub ats_retry: Option<AtsRetryConfig>,
    /// Abort with a state dump when no warp memory instruction retires
    /// for this many cycles (`None` disables; the event-budget guard
    /// still catches runaway loops). The check is observation-only — it
    /// schedules no events, so it never perturbs cycle counts.
    pub watchdog_cycles: Option<Cycle>,
}

impl SystemConfig {
    /// Table II configuration (256 CUs) — faithful but slow; experiments
    /// default to [`scaled`](Self::scaled).
    pub fn paper() -> Self {
        Self {
            topology: Topology::paper_default(),
            page_size: PageSize::Size4K,
            policy: PolicyKind::Lasp,
            mode: TranslationMode::Baseline,
            mmu: MmuKind::Iommu,
            l1_tlb_entries: 64,
            l1_tlb_latency: 1,
            l2_tlb_entries: 512,
            l2_tlb_ways: 16,
            l2_tlb_latency: 10,
            l2_tlb_mshrs: 16,
            ptws: Some(16),
            pw_queue_entries: 48,
            walk_latency: 500,
            iommu_tlb: None,
            pec_buffer_entries: 5,
            barre_multicast: false,
            pcie_latency: 150,
            pcie_bytes_per_cycle: 32,
            mesh_latency: 32,
            mesh_bytes_per_cycle: 768,
            dram_latency: 100,
            dram_bytes_per_cycle: 1000,
            l1d_bytes: 16 * 1024,
            l1d_latency: 4,
            l2d_bytes: 2 * 1024 * 1024,
            l2d_latency: 30,
            line_bytes: 64,
            cu_slots: 4,
            migration: None,
            demand_paging: None,
            frames_per_chiplet: None,
            seed: 0xBA22E,
            max_warps_per_cta: None,
            fault_plan: FaultPlan::default(),
            ats_retry: Some(AtsRetryConfig::default()),
            watchdog_cycles: Some(10_000_000),
        }
    }

    /// The scaled configuration every bench uses: same ratios, 32 CUs
    /// with 8 warp slots each (256 concurrent streams — the paper's
    /// 256-CU : 16-PTW pressure ratio), proportionally smaller TLBs and
    /// caches so the pressure classes are preserved while runs finish in
    /// seconds.
    pub fn scaled() -> Self {
        Self {
            topology: Topology::scaled(),
            l2_tlb_entries: 256,
            l2_tlb_ways: 8,
            l2d_bytes: 512 * 1024,
            ptws: Some(16),
            cu_slots: 8,
            max_warps_per_cta: Some(1_500),
            ..Self::paper()
        }
    }

    /// Builder-style mode override.
    pub fn with_mode(mut self, mode: TranslationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style page-size override.
    pub fn with_page_size(mut self, ps: PageSize) -> Self {
        self.page_size = ps;
        self
    }

    /// Builder-style PTW override.
    pub fn with_ptws(mut self, ptws: Option<usize>) -> Self {
        self.ptws = ptws;
        self
    }

    /// Builder-style migration toggle.
    pub fn with_migration(mut self, m: Option<MigrationConfig>) -> Self {
        self.migration = m;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style fault-plan override.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builder-style ATS retry override.
    pub fn with_ats_retry(mut self, retry: Option<AtsRetryConfig>) -> Self {
        self.ats_retry = retry;
        self
    }

    /// Builder-style watchdog override.
    pub fn with_watchdog(mut self, cycles: Option<Cycle>) -> Self {
        self.watchdog_cycles = cycles;
        self
    }

    /// Rejects internally inconsistent configurations before any
    /// component constructor can assert on them.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |why: String| Err(SimError::InvalidConfig(why));
        if self.topology.n_chiplets == 0 || self.topology.total_cus() == 0 {
            return bad("topology has no chiplets or no CUs".into());
        }
        if self.l1_tlb_entries == 0 {
            return bad("l1_tlb_entries must be nonzero".into());
        }
        if self.l2_tlb_entries == 0 || self.l2_tlb_ways == 0 {
            return bad("L2 TLB entries/ways must be nonzero".into());
        }
        if !self.l2_tlb_entries.is_multiple_of(self.l2_tlb_ways)
            || !(self.l2_tlb_entries / self.l2_tlb_ways).is_power_of_two()
        {
            return bad(format!(
                "L2 TLB geometry {}e/{}w does not give a power-of-two set count",
                self.l2_tlb_entries, self.l2_tlb_ways
            ));
        }
        if self.l2_tlb_mshrs == 0 {
            return bad("l2_tlb_mshrs must be nonzero".into());
        }
        if self.pw_queue_entries == 0 {
            return bad("pw_queue_entries must be nonzero".into());
        }
        if self.ptws == Some(0) {
            return bad("ptws must be nonzero (use None for infinite)".into());
        }
        if self.pec_buffer_entries == 0 {
            return bad("pec_buffer_entries must be nonzero".into());
        }
        if self.pcie_bytes_per_cycle == 0
            || self.mesh_bytes_per_cycle == 0
            || self.dram_bytes_per_cycle == 0
        {
            return bad("link/DRAM bandwidth must be nonzero".into());
        }
        if self.line_bytes == 0
            || self.l1d_bytes < self.line_bytes
            || self.l2d_bytes < self.line_bytes
        {
            return bad("cache sizes must hold at least one line".into());
        }
        if self.cu_slots == 0 {
            return bad("cu_slots must be nonzero".into());
        }
        if self.frames_per_chiplet == Some(0) {
            return bad("frames_per_chiplet must be nonzero (use None to auto-size)".into());
        }
        if let Err(why) = self.fault_plan.validate() {
            return bad(format!("fault plan: {why}"));
        }
        if let Some(r) = self.ats_retry {
            if r.deadline == 0 {
                return bad("ats_retry.deadline must be nonzero".into());
            }
            if r.max_backoff < r.deadline {
                return bad("ats_retry.max_backoff must be >= deadline".into());
            }
        }
        if self.watchdog_cycles == Some(0) {
            return bad("watchdog_cycles must be nonzero (use None to disable)".into());
        }
        Ok(())
    }

    /// Renders the Table II parameter dump (the `table2_config` bench).
    pub fn table2(&self) -> String {
        let t = &self.topology;
        let mut s = String::new();
        let mut row = |k: &str, v: String| {
            s.push_str(&format!("{k:<28}| {v}\n"));
        };
        row("Number of GPU chiplets", t.n_chiplets.to_string());
        row("Number of SAs", format!("{} per Chip", t.sas_per_chiplet));
        row(
            "Number of CUs",
            format!("{} per SA. {} in total", t.cus_per_sa, t.total_cus()),
        );
        row(
            "L2 Cache",
            format!("{} KB, {} B lines", self.l2d_bytes / 1024, self.line_bytes),
        );
        row(
            "DRAM",
            format!(
                "{} B/cy, {} cy latency",
                self.dram_bytes_per_cycle, self.dram_latency
            ),
        );
        row(
            "L1 TLB",
            format!(
                "{} entries, fully assoc, {} cy, private to CU",
                self.l1_tlb_entries, self.l1_tlb_latency
            ),
        );
        row(
            "L2 TLB",
            format!(
                "{} entries, {}-way, chip-shared, {} cy, {} MSHRs",
                self.l2_tlb_entries, self.l2_tlb_ways, self.l2_tlb_latency, self.l2_tlb_mshrs
            ),
        );
        row(
            "IOMMU",
            format!(
                "{} PTWs, {}-cy walks, {} PW-queue entries",
                self.ptws.map_or("inf".into(), |p| p.to_string()),
                self.walk_latency,
                self.pw_queue_entries
            ),
        );
        row("CTA/Page Scheduling", self.policy.name().to_string());
        row(
            "Inter-chip",
            format!(
                "{} B/cy mesh, {} cy latency",
                self.mesh_bytes_per_cycle, self.mesh_latency
            ),
        );
        row(
            "CPU-GPU",
            format!(
                "PCIe {} B/cy, {} cy latency",
                self.pcie_bytes_per_cycle, self.pcie_latency
            ),
        );
        row("Page size", self.page_size.to_string());
        row("Translation mode", self.mode.label());
        s
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table2() {
        let c = SystemConfig::paper();
        assert_eq!(c.topology.total_cus(), 256);
        assert_eq!(c.l2_tlb_entries, 512);
        assert_eq!(c.ptws, Some(16));
        assert_eq!(c.pw_queue_entries, 48);
        assert_eq!(c.walk_latency, 500);
        assert_eq!(c.pcie_latency, 150);
        assert_eq!(c.mesh_latency, 32);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(TranslationMode::Baseline.label(), "baseline");
        assert_eq!(
            TranslationMode::FBarre(FBarreConfig::default()).label(),
            "F-Barre-2Merge"
        );
        let nomerge = TranslationMode::FBarre(FBarreConfig {
            max_merged: 1,
            ..Default::default()
        });
        assert_eq!(nomerge.label(), "F-Barre-NoMerge");
        assert!(nomerge.uses_barre());
        assert!(!TranslationMode::Least.uses_barre());
        assert_eq!(TranslationMode::Barre.max_merged(), 1);
    }

    #[test]
    fn table2_dump_mentions_key_rows() {
        let s = SystemConfig::paper().table2();
        assert!(s.contains("IOMMU"));
        assert!(s.contains("LASP"));
        assert!(s.contains("512 entries"));
    }

    #[test]
    fn builders_chain() {
        let c = SystemConfig::scaled()
            .with_mode(TranslationMode::Barre)
            .with_ptws(None)
            .with_seed(7);
        assert_eq!(c.mode, TranslationMode::Barre);
        assert_eq!(c.ptws, None);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn default_configs_validate() {
        assert!(SystemConfig::paper().validate().is_ok());
        assert!(SystemConfig::scaled().validate().is_ok());
    }

    #[test]
    fn validate_catches_misconfigurations() {
        let mut c = SystemConfig::scaled();
        c.l2_tlb_ways = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::scaled();
        c.l2_tlb_entries = 100; // 100/8 is not a power-of-two set count
        assert!(c.validate().is_err());

        let mut c = SystemConfig::scaled();
        c.ptws = Some(0);
        assert!(c.validate().is_err());

        let mut c = SystemConfig::scaled();
        c.fault_plan.ats_request_drop = 2.0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::scaled();
        c.ats_retry = Some(AtsRetryConfig {
            deadline: 0,
            ..Default::default()
        });
        assert!(c.validate().is_err());

        let mut c = SystemConfig::scaled();
        c.watchdog_cycles = Some(0);
        assert!(c.validate().is_err());
    }
}
