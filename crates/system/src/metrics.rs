//! Per-run measurements — everything the paper's figures are plotted from.

use barre_sim::Histogram;

/// Measurements of one simulation run.
///
/// `PartialEq` is derived so the bench harness can assert that serial and
/// parallel sweep execution produce byte-identical results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Total simulated cycles to drain every CTA.
    pub total_cycles: u64,
    /// Warp-level instructions executed (memory + compute), the MPKI
    /// denominator.
    pub warp_instructions: u64,
    /// Warp memory instructions executed.
    pub warp_mem_instructions: u64,
    /// Page translations requested of L1 TLBs (post warp-coalescing).
    pub l1_tlb_lookups: u64,
    /// L1 TLB misses.
    pub l1_tlb_misses: u64,
    /// L2 TLB demand lookups.
    pub l2_tlb_lookups: u64,
    /// L2 TLB demand misses.
    pub l2_tlb_misses: u64,
    /// ATS packets sent to the IOMMU (requests).
    pub ats_requests: u64,
    /// Page table walks performed (IOMMU or GMMU).
    pub walks: u64,
    /// Translations served by PEC calculation at the IOMMU/GMMU.
    pub coalesced_translations: u64,
    /// Translations resolved *inside* the MCM: locally via LCF or via a
    /// peer chiplet (F-Barre), or via a remote L2 TLB (Least).
    pub intra_mcm_translations: u64,
    /// … of which resolved locally through the LCF.
    pub lcf_translations: u64,
    /// Peer probes sent (F-Barre RCF hits / Least tracker hits).
    pub peer_probes: u64,
    /// Peer probes that failed (filter false positive / stale entry).
    pub peer_probe_nacks: u64,
    /// Valkyrie sibling-L1 probe hits.
    pub l1_peer_hits: u64,
    /// Prefetch ATS requests issued (Valkyrie).
    pub prefetches: u64,
    /// Filter-update messages sent / dropped (best-effort path).
    pub filter_updates_sent: u64,
    /// Dropped filter updates.
    pub filter_updates_dropped: u64,
    /// Data accesses served by remote chiplets.
    pub remote_data_accesses: u64,
    /// Total data accesses.
    pub data_accesses: u64,
    /// Pages migrated.
    pub migrations: u64,
    /// Demand-paging far faults taken.
    pub page_faults: u64,
    /// Pages mapped by the fault handler (group fetch maps several per
    /// fault).
    pub demand_pages_mapped: u64,
    /// GMMU walks that crossed the mesh (MGvm remote walks).
    pub gmmu_remote_walks: u64,
    /// GMMU walks served locally.
    pub gmmu_local_walks: u64,
    /// End-to-end ATS turnaround distribution (cycles).
    pub ats_latency: Histogram,
    /// VPN gap between consecutive IOMMU requests (Fig 5).
    pub vpn_gap: Histogram,
    /// Bytes moved over PCIe (both directions).
    pub pcie_bytes: u64,
    /// Bytes moved over the mesh.
    pub mesh_bytes: u64,
    /// Total PTW-occupied cycles at the IOMMU.
    pub ptw_busy_cycles: u64,
    /// ATS packets bounced off a full PW-queue.
    pub pw_queue_rejections: u64,
    /// Remote hit rate numerator/denominator for Fig 17a (peer probes
    /// that returned a translation / peer translation attempts).
    pub rcf_remote_attempts: u64,
    /// Successful remote translations (Fig 17a numerator).
    pub rcf_remote_hits: u64,
    /// LCF probes that led to a real local coalescing translation.
    pub lcf_true_hits: u64,
    /// LCF probes that hit the filter.
    pub lcf_hits: u64,
    /// Faults injected by the active `FaultPlan` (all kinds).
    pub faults_injected: u64,
    /// ATS requests re-sent after a timeout.
    pub ats_retries: u64,
    /// ATS deadline expirations observed (retries + fallbacks).
    pub ats_timeouts: u64,
    /// Translations resolved through the conventional-walk fallback
    /// after exhausting ATS retries.
    pub fallback_translations: u64,
    /// 1 when the no-progress watchdog aborted the run (such metrics
    /// arrive inside `SimError::NoProgress`, never from a clean return).
    pub watchdog_fired: u64,
    /// Simulation events executed by the event loop — the numerator of
    /// the bench harness's events/sec throughput figure. Deterministic
    /// (same seed → same count), unlike wall time, so it is safe to keep
    /// in the metrics struct the equivalence checks compare.
    pub events_processed: u64,
}

impl RunMetrics {
    /// L2 TLB misses per kilo warp instruction — Table I's metric.
    pub fn mpki(&self) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.l2_tlb_misses as f64 * 1000.0 / self.warp_instructions as f64
        }
    }

    /// Fraction of IOMMU/GMMU translations served by calculation
    /// (Fig 16b).
    pub fn coalescing_rate(&self) -> f64 {
        let total = self.walks + self.coalesced_translations;
        if total == 0 {
            0.0
        } else {
            self.coalesced_translations as f64 / total as f64
        }
    }

    /// Fraction of data accesses that crossed the mesh.
    pub fn remote_access_rate(&self) -> f64 {
        if self.data_accesses == 0 {
            0.0
        } else {
            self.remote_data_accesses as f64 / self.data_accesses as f64
        }
    }

    /// Remote (RCF) hit rate, Fig 17a.
    pub fn remote_hit_rate(&self) -> f64 {
        if self.rcf_remote_attempts == 0 {
            0.0
        } else {
            self.rcf_remote_hits as f64 / self.rcf_remote_attempts as f64
        }
    }

    /// Local (LCF) true-positive rate, Fig 17a.
    pub fn local_hit_rate(&self) -> f64 {
        if self.lcf_hits == 0 {
            0.0
        } else {
            self.lcf_true_hits as f64 / self.lcf_hits as f64
        }
    }

    /// Mean ATS turnaround in cycles (Fig 16a).
    pub fn mean_ats_latency(&self) -> f64 {
        self.ats_latency.mean()
    }
}

/// Speedup of `new` over `base` by total cycles.
pub fn speedup(base: &RunMetrics, new: &RunMetrics) -> f64 {
    if new.total_cycles == 0 {
        0.0
    } else {
        base.total_cycles as f64 / new.total_cycles as f64
    }
}

/// Geometric mean of an iterator of positive ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_uses_warp_instructions() {
        let m = RunMetrics {
            warp_instructions: 10_000,
            l2_tlb_misses: 50,
            ..Default::default()
        };
        assert!((m.mpki() - 5.0).abs() < 1e-12);
        assert_eq!(RunMetrics::default().mpki(), 0.0);
    }

    #[test]
    fn rates_are_bounded() {
        let m = RunMetrics {
            walks: 40,
            coalesced_translations: 60,
            data_accesses: 100,
            remote_data_accesses: 25,
            ..Default::default()
        };
        assert!((m.coalescing_rate() - 0.6).abs() < 1e-12);
        assert!((m.remote_access_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_geomean() {
        let base = RunMetrics {
            total_cycles: 200,
            ..Default::default()
        };
        let new = RunMetrics {
            total_cycles: 100,
            ..Default::default()
        };
        assert!((speedup(&base, &new) - 2.0).abs() < 1e-12);
        let g = geomean([1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }
}
