//! Full-machine composition: the runnable MCM-GPU translation-path model.
//!
//! Everything the paper's evaluation needs funnels through this crate:
//!
//! * [`SystemConfig`] — Table II parameters plus translation-mode,
//!   policy, page-size, PTW, MSHR, migration and topology knobs;
//! * [`TranslationMode`] — baseline, Valkyrie, Least, ideal shared L2,
//!   Barre, and F-Barre with its feature toggles;
//! * [`run_app`] / [`run_spec`] / [`run_pair`] — build and run one
//!   experiment, returning `Result<RunMetrics, SimError>`;
//! * [`SimError`] — the failure taxonomy (misconfiguration, frame
//!   exhaustion, translation faults, watchdog aborts);
//! * [`speedup`] / [`geomean`] — the ratios the figures plot.
//!
//! # Example
//!
//! ```
//! use barre_system::{run_app, smoke_config, speedup, SystemConfig, TranslationMode};
//! use barre_workloads::AppId;
//!
//! let cfg = smoke_config();
//! let base = run_app(AppId::Gups, &cfg, 42).unwrap();
//! let barre = run_app(AppId::Gups, &cfg.clone().with_mode(TranslationMode::Barre), 42).unwrap();
//! assert!(speedup(&base, &barre) > 0.0);
//! ```

/// System configuration (Table II) and translation-mode selection.
pub mod config;
/// The failure taxonomy of the build/run pipeline.
pub mod error;
/// Write-ahead run journal behind `barre sweep --resume` / `barre merge`.
pub mod journal;
/// The full-machine event-driven model.
pub mod machine;
/// Per-run measurements — everything the figures are plotted from.
pub mod metrics;
mod reqtrack;
/// Building and running experiments (single runs, batches, sweeps).
pub mod runner;
/// Conservation-law sanitizer (compiled under `--features sanitizer`).
#[cfg(feature = "sanitizer")]
pub mod sanitizer;

pub use config::{
    AtsRetryConfig, DemandPagingConfig, FBarreConfig, MigrationConfig, MmuKind, SystemConfig,
    TranslationMode,
};
pub use error::SimError;
pub use journal::{
    completed_index, fingerprint, merge_journals, metrics_digest, metrics_from_json,
    metrics_hist_digest, metrics_to_json, read_journal, read_journal_lenient, verified_done_index,
    JournalError, JournalEvent, JournalRecord, JournalWriter, Json, JOURNAL_FILE,
};
pub use machine::{L2Payload, Machine};
pub use metrics::{geomean, speedup, RunMetrics};
pub use runner::{
    build_machine, chaos_jobs, run_app, run_batch, run_pair, run_spec, smoke_config, summary_line,
    sweep_jobs, trace_app, BatchJob, LabeledJob,
};
#[cfg(feature = "sanitizer")]
pub use sanitizer::{SanitizerReport, Violation};
