//! Hot-path bookkeeping structures for the machine's translation layer.
//!
//! The event loop used to pay two `BTreeMap` walks per translation —
//! `req_origin` (demand/prefetch provenance per in-flight ATS request)
//! and `ats_pending` (retry state per outstanding `(chiplet, key)`).
//! Both are replaced here with index-based structures:
//!
//! * [`ReqSlab`] — a generation-checked slab. The request id itself
//!   encodes `(generation << 32) | slot`, so resolving a response is one
//!   bounds check plus one generation compare instead of a tree descent.
//!   Stale or foreign ids (e.g. the IOMMU's synthetic multicast ids near
//!   `u64::MAX`) safely miss.
//! * [`AtsPendingTable`] — per-chiplet sorted indexes over a slab with an
//!   embedded free list. Keyed access is a binary search over a small
//!   contiguous `Vec`; the common fault-free case (`remove` on an empty
//!   table at every fill) is a length check.
//!
//! Neither structure is ever iterated, so no container ordering can leak
//! into simulation results; both keep exact counts for watchdog dumps.

use barre_sim::Cycle;
use barre_tlb::TlbKey;

/// In-flight ATS bookkeeping for the retry/fallback layer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingAts {
    /// Timeouts already taken for this key.
    pub attempts: u8,
    /// Identifies the newest send; older deadline timers are stale.
    pub epoch: u64,
    /// Whether the outstanding attempt is a prefetch.
    pub prefetch: bool,
}

// Compile-time association with the simulated clock: retry epochs are
// compared against deadlines measured in cycles.
const _: fn(Cycle) -> Cycle = std::convert::identity;

/// Slot state for [`ReqSlab`].
#[derive(Debug, Clone, Copy, Default)]
struct ReqSlot {
    generation: u32,
    prefetch: bool,
    occupied: bool,
}

/// A generation-checked slab mapping in-flight ATS request ids to their
/// origin (demand vs prefetch). Ids encode `(generation << 32) | slot`.
#[derive(Debug, Default)]
pub(crate) struct ReqSlab {
    slots: Vec<ReqSlot>,
    free: Vec<u32>,
    live: usize,
}

impl ReqSlab {
    /// An empty slab with room for `cap` in-flight requests before the
    /// first reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Registers an in-flight request, returning its wire id.
    pub fn insert(&mut self, prefetch: bool) -> u64 {
        self.live += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                entry.prefetch = prefetch;
                entry.occupied = true;
                s
            }
            None => {
                self.slots.push(ReqSlot {
                    generation: 0,
                    prefetch,
                    occupied: true,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        ((generation as u64) << 32) | slot as u64
    }

    /// Retires the request `id`, returning whether it was a prefetch.
    /// `None` for ids this slab never issued (stale generation, foreign
    /// synthetic ids, out-of-range slots).
    pub fn take(&mut self, id: u64) -> Option<bool> {
        let slot = (id & u32::MAX as u64) as usize;
        let generation = (id >> 32) as u32;
        let entry = self.slots.get_mut(slot)?;
        if !entry.occupied || entry.generation != generation {
            return None;
        }
        entry.occupied = false;
        // Bumping the generation on release invalidates every copy of
        // the old id still in flight.
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(entry.prefetch)
    }

    /// Number of requests currently in flight.
    pub fn len(&self) -> usize {
        self.live
    }
}

/// Outstanding-ATS retry state, keyed by `(chiplet, TlbKey)`: per-chiplet
/// sorted indexes into a slab with a free list. Small, contiguous, and
/// allocation-free in steady state.
#[derive(Debug, Default)]
pub(crate) struct AtsPendingTable {
    /// Per-chiplet `(key, slot)` pairs, sorted by key.
    index: Vec<Vec<(TlbKey, u32)>>,
    slots: Vec<PendingAts>,
    free: Vec<u32>,
    live: usize,
}

impl AtsPendingTable {
    /// An empty table with one index lane per chiplet.
    pub fn new(n_chiplets: usize) -> Self {
        Self {
            index: (0..n_chiplets).map(|_| Vec::new()).collect(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn find(&self, chiplet: u8, key: TlbKey) -> Option<(usize, u32)> {
        let lane = self.index.get(chiplet as usize)?;
        let pos = lane.binary_search_by_key(&key, |&(k, _)| k).ok()?;
        Some((pos, lane[pos].1))
    }

    /// The entry for `(chiplet, key)`, if one is outstanding.
    pub fn get(&self, chiplet: u8, key: TlbKey) -> Option<&PendingAts> {
        let (_, slot) = self.find(chiplet, key)?;
        self.slots.get(slot as usize)
    }

    /// Mutable access to the entry for `(chiplet, key)`, if outstanding.
    pub fn get_mut(&mut self, chiplet: u8, key: TlbKey) -> Option<&mut PendingAts> {
        let (_, slot) = self.find(chiplet, key)?;
        self.slots.get_mut(slot as usize)
    }

    /// Returns the entry for `(chiplet, key)`, inserting `seed` first
    /// when absent (the `entry().or_insert()` shape the retry layer
    /// uses).
    pub fn upsert(&mut self, chiplet: u8, key: TlbKey, seed: PendingAts) -> &mut PendingAts {
        let c = chiplet as usize;
        match self.index[c].binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => {
                let slot = self.index[c][pos].1;
                &mut self.slots[slot as usize]
            }
            Err(pos) => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize] = seed;
                        s
                    }
                    None => {
                        self.slots.push(seed);
                        (self.slots.len() - 1) as u32
                    }
                };
                self.index[c].insert(pos, (key, slot));
                self.live += 1;
                &mut self.slots[slot as usize]
            }
        }
    }

    /// Removes and returns the entry for `(chiplet, key)`, if present.
    pub fn remove(&mut self, chiplet: u8, key: TlbKey) -> Option<PendingAts> {
        let c = chiplet as usize;
        if self.index.get(c)?.is_empty() {
            return None; // the fault-free fast path: nothing pending
        }
        let pos = self.index[c].binary_search_by_key(&key, |&(k, _)| k).ok()?;
        let (_, slot) = self.index[c].remove(pos);
        self.free.push(slot);
        self.live -= 1;
        Some(self.slots[slot as usize])
    }

    /// Number of outstanding `(chiplet, key)` attempts.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no attempts are outstanding.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_mem::Vpn;

    fn key(vpn: u64) -> TlbKey {
        TlbKey {
            asid: 0,
            vpn: Vpn(vpn),
        }
    }

    #[test]
    fn slab_round_trips_origin() {
        let mut s = ReqSlab::default();
        let a = s.insert(false);
        let b = s.insert(true);
        assert_eq!(s.len(), 2);
        assert_eq!(s.take(b), Some(true));
        assert_eq!(s.take(a), Some(false));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn slab_rejects_stale_and_foreign_ids() {
        let mut s = ReqSlab::with_capacity(4);
        let a = s.insert(true);
        assert_eq!(s.take(a), Some(true));
        // Stale: same slot, old generation.
        assert_eq!(s.take(a), None);
        // Slot reuse bumps the generation, so the old id stays dead.
        let b = s.insert(false);
        assert_ne!(a, b);
        assert_eq!(s.take(a), None);
        // Foreign synthetic ids (IOMMU multicast uses u64::MAX - n).
        assert_eq!(s.take(u64::MAX), None);
        assert_eq!(s.take(u64::MAX - 17), None);
        assert_eq!(s.take(b), Some(false));
    }

    #[test]
    fn pending_table_keyed_ops() {
        let mut t = AtsPendingTable::new(4);
        assert!(t.is_empty());
        assert!(t.remove(1, key(5)).is_none());
        let seed = PendingAts {
            attempts: 0,
            epoch: 1,
            prefetch: false,
        };
        t.upsert(1, key(5), seed).epoch = 2;
        t.upsert(1, key(3), seed);
        t.upsert(2, key(5), seed).attempts = 7;
        assert_eq!(t.len(), 3);
        // Same (chiplet, key) upserts update in place.
        let e = t.upsert(1, key(5), seed);
        assert_eq!(e.epoch, 2);
        assert_eq!(t.len(), 3);
        // Chiplet lanes are independent.
        assert_eq!(t.get(2, key(5)).map(|p| p.attempts), Some(7));
        assert_eq!(t.get(1, key(5)).map(|p| p.attempts), Some(0));
        assert!(t.get(3, key(5)).is_none());
        if let Some(p) = t.get_mut(1, key(3)) {
            p.attempts = 9;
        }
        assert_eq!(t.remove(1, key(3)).map(|p| p.attempts), Some(9));
        assert_eq!(t.len(), 2);
        // Freed slots are reused.
        t.upsert(0, key(1), seed);
        assert_eq!(t.len(), 3);
        assert_eq!(t.slots.len(), 3);
    }
}
