//! Conservation-law sanitizer (compiled under `--features sanitizer`).
//!
//! The translation pipeline obeys a handful of conservation laws; PR 1
//! pinned the end-of-run one (`walks + coalesced + fallback ==
//! ats_requests`) in integration tests, but a law can be violated
//! mid-run and still balance out by the end. With the `sanitizer`
//! feature on, [`Machine::run`](crate::machine::Machine::run) re-checks
//! every law at every epoch (a fixed event-count stride) and at drain:
//!
//! 1. **Translation conservation** — every serviced translation (walk,
//!    coalesced calculation, or fallback) answers exactly one ATS
//!    request, so `serviced <= requests` at all times, with equality at
//!    drain. Only checked when the IOMMU TLB is off and speculative
//!    multicast is disabled; both decouple services from requests.
//! 2. **Frame accounting** — per chiplet, frames counted allocated in
//!    the bitmap plus the cached free counter equal capacity.
//! 3. **MSHR bounds** — in-flight misses never exceed the register file
//!    capacity.
//! 4. **Link accounting** — serialization takes at least one cycle per
//!    message and at least `bytes / bytes_per_cycle` cycles overall, so
//!    `msgs <= busy_cycles` and `total_bytes <= busy_cycles *
//!    bytes_per_cycle` on every link.
//!
//! A failed check `debug_assert!`s with the rendered report; in release
//! builds the violations accumulate in the machine's
//! [`SanitizerReport`], retrievable via
//! [`Machine::sanitizer_report`](crate::machine::Machine::sanitizer_report).

use std::fmt::Write as _;

use barre_sim::Cycle;

/// One conservation-law violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which law failed (`"translation-conservation"`, …).
    pub law: &'static str,
    /// Human-readable account of the imbalance.
    pub detail: String,
    /// Simulated cycle at which the check ran.
    pub cycle: Cycle,
}

/// Accumulated sanitizer state for one run.
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Violations in detection order.
    pub violations: Vec<Violation>,
    /// Epoch checks performed so far.
    pub epochs_checked: u64,
}

impl SanitizerReport {
    /// Whether every epoch check passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Structured dump: one `[law] cycle=N detail` line per violation
    /// under a summary header.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conservation sanitizer: {} violation(s) over {} epoch check(s)",
            self.violations.len(),
            self.epochs_checked
        );
        for v in &self.violations {
            let _ = writeln!(out, "  [{}] cycle={} {}", v.law, v.cycle, v.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_structured_lines() {
        let mut r = SanitizerReport::default();
        r.epochs_checked = 3;
        r.violations.push(Violation {
            law: "frame-accounting",
            detail: "chiplet 1: allocated 5 + free 2 != capacity 8".to_string(),
            cycle: 4096,
        });
        let s = r.render();
        assert!(s.contains("1 violation(s) over 3 epoch check(s)"));
        assert!(s.contains("[frame-accounting] cycle=4096"));
        assert!(!r.is_clean());
    }
}
