//! The failure taxonomy of the build/run pipeline.
//!
//! Everything that used to panic on the `build_machine` → `Machine::run`
//! path — frame exhaustion, misconfiguration, unmapped translations,
//! deadlock — now surfaces as a [`SimError`], so harnesses (the CLI, the
//! chaos sweep, property tests) can observe failures instead of dying.

use barre_mem::Vpn;
use barre_sim::Cycle;

use crate::metrics::RunMetrics;

/// Why a simulation could not be built or could not finish.
#[derive(Debug, Clone)]
pub enum SimError {
    /// A chiplet's frame allocator ran dry while mapping a workload (or
    /// serving a demand-paging fault / migration).
    OutOfFrames {
        /// Chiplet whose allocator was exhausted.
        chiplet: u8,
    },
    /// A mapping plan was asked about a VPN outside its range — a driver
    /// or policy bug surfaced at build time.
    VpnOutsidePlan {
        /// Address space of the stray VPN.
        asid: u16,
        /// The VPN that no plan covers.
        vpn: Vpn,
    },
    /// The configuration is internally inconsistent (zero-sized
    /// structure, bad fault plan, impossible TLB geometry…).
    InvalidConfig(String),
    /// A workload touched an unmapped page with demand paging disabled.
    TranslationFault {
        /// Address space of the faulting access.
        asid: u16,
        /// The unmapped VPN.
        vpn: Vpn,
    },
    /// The watchdog saw no forward progress (no warp memory instruction
    /// retired) for the configured window, or the event queue drained
    /// with live state left behind. Carries the metrics collected up to
    /// the abort (with `watchdog_fired` set) and a state dump.
    NoProgress {
        /// Cycle at which the watchdog gave up.
        cycle: Cycle,
        /// Human-readable machine-state summary for diagnosis.
        dump: String,
        /// Metrics up to the abort; `watchdog_fired == 1`.
        metrics: Box<RunMetrics>,
    },
    /// The deadlock-guard event budget was exceeded — a runaway event
    /// loop rather than a quiet hang.
    EventBudgetExceeded {
        /// Events processed when the guard tripped.
        processed: u64,
        /// Simulated cycle at that point.
        cycle: Cycle,
    },
    /// A worker thread died while running a batch of simulations on the
    /// run-level pool — some job panicked, so the whole batch is
    /// discarded rather than returned incomplete.
    WorkerPanicked {
        /// Number of pool workers that panicked.
        workers: usize,
    },
}

/// Child-process exit code for a *permanent* failure: the same inputs
/// will fail the same way (bad configuration, plan/driver bug,
/// deterministic translation fault), so the sweep supervisor must not
/// burn retries on it.
pub const EXIT_PERMANENT: i32 = 64;

/// Child-process exit code for a *transient-shaped* failure: watchdog
/// aborts, event-budget blowups, frame exhaustion and worker panics are
/// worth the supervisor's bounded retry (they may be environmental, and
/// retrying is how the ISSUE's failure policy treats any nonzero exit).
pub const EXIT_TRANSIENT: i32 = 65;

impl SimError {
    /// Whether retrying the identical simulation is pointless: the error
    /// is a deterministic property of the inputs, not of the run.
    pub fn is_permanent(&self) -> bool {
        match self {
            SimError::InvalidConfig(_)
            | SimError::VpnOutsidePlan { .. }
            | SimError::TranslationFault { .. } => true,
            SimError::OutOfFrames { .. }
            | SimError::NoProgress { .. }
            | SimError::EventBudgetExceeded { .. }
            | SimError::WorkerPanicked { .. } => false,
        }
    }

    /// The process exit code a supervised sweep child reports this error
    /// with: [`EXIT_PERMANENT`] or [`EXIT_TRANSIENT`]. The supervisor
    /// maps the former to an immediate labeled failure and the latter to
    /// retry-with-backoff.
    pub fn exit_code(&self) -> i32 {
        if self.is_permanent() {
            EXIT_PERMANENT
        } else {
            EXIT_TRANSIENT
        }
    }
}

impl From<barre_sim::PoolError> for SimError {
    fn from(e: barre_sim::PoolError) -> Self {
        SimError::WorkerPanicked {
            workers: e.panicked_workers,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfFrames { chiplet } => {
                write!(f, "chiplet {chiplet} is out of physical frames")
            }
            SimError::VpnOutsidePlan { asid, vpn } => {
                write!(f, "vpn {vpn} (asid {asid}) lies outside every mapping plan")
            }
            SimError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SimError::TranslationFault { asid, vpn } => write!(
                f,
                "translation fault for {vpn} asid {asid} — workload touched an unmapped page \
                 and demand paging is disabled"
            ),
            SimError::NoProgress { cycle, dump, .. } => {
                write!(f, "no forward progress by cycle {cycle}; {dump}")
            }
            SimError::EventBudgetExceeded { processed, cycle } => write!(
                f,
                "event budget exceeded ({processed} events by cycle {cycle}) — \
                 deadlock or runaway workload"
            ),
            SimError::WorkerPanicked { workers } => write!(
                f,
                "{workers} sweep worker thread(s) panicked; batch discarded"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfFrames { chiplet: 3 };
        assert!(e.to_string().contains("chiplet 3"));
        let e = SimError::InvalidConfig("l2_tlb_ways = 0".into());
        assert!(e.to_string().contains("l2_tlb_ways"));
        let e = SimError::NoProgress {
            cycle: 99,
            dump: "2 MSHRs pending".into(),
            metrics: Box::default(),
        };
        assert!(e.to_string().contains("cycle 99"));
        assert!(e.to_string().contains("MSHRs"));
    }

    #[test]
    fn permanence_classification_drives_exit_codes() {
        let permanent = SimError::InvalidConfig("bad".into());
        let transient = SimError::NoProgress {
            cycle: 1,
            dump: "stuck".into(),
            metrics: Box::default(),
        };
        assert!(permanent.is_permanent());
        assert!(!transient.is_permanent());
        assert_eq!(permanent.exit_code(), EXIT_PERMANENT);
        assert_eq!(transient.exit_code(), EXIT_TRANSIENT);
        assert_ne!(EXIT_PERMANENT, EXIT_TRANSIENT);
    }
}
