//! Building and running experiments.
//!
//! [`build_machine`] performs everything the host software stack would:
//! virtual allocation per data object, policy planning (LASP & friends),
//! driver page mapping (Barre-enforced or default), page-table and
//! PEC-record construction, CTA creation and scheduling. [`run_app`] /
//! [`run_spec`] / [`run_pair`] are the one-call entry points every bench
//! uses.

use barre_core::driver::{AllocError, BarreAllocator, MappingPlan};
use barre_core::{CoalMode, PecEntry};
use barre_gpu::{Cta, CtaId, CtaScheduler};
use barre_mem::{FrameAllocator, GlobalPfn, PageTable, Pte, PteFlags, VirtAddr, VirtAllocator};
use barre_trace::{TraceOptions, TraceRecorder};
use barre_workloads::{AppId, AppPair, WorkloadSpec};

use crate::config::{SystemConfig, TranslationMode};
use crate::error::SimError;
use crate::machine::Machine;
use crate::metrics::RunMetrics;

/// The PTE coalescing layout a configuration implies.
pub fn coal_mode_of(cfg: &SystemConfig) -> CoalMode {
    if cfg.topology.n_chiplets > 8 {
        // Beyond 8 chiplets only the §VI wide layout fits the PTE bits;
        // it cannot express merged runs, so callers must use
        // `max_merged == 1` there.
        return CoalMode::Wide;
    }
    match cfg.mode {
        TranslationMode::FBarre(f) if f.max_merged > 1 => CoalMode::Expanded,
        _ => CoalMode::Base,
    }
}

/// Builds a ready-to-run machine executing `specs` concurrently (one
/// address space each).
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for an inconsistent configuration,
/// [`SimError::OutOfFrames`] when a chiplet runs out of physical frames
/// during premapping (auto-sizing leaves ample headroom, so this
/// indicates undersized `frames_per_chiplet`).
pub fn build_machine(
    specs: &[WorkloadSpec],
    cfg: &SystemConfig,
    seed: u64,
) -> Result<Machine, SimError> {
    cfg.validate()?;
    let n = cfg.topology.n_chiplets;
    let shift = cfg.page_size.shift();
    let total_pages: u64 = specs
        .iter()
        .flat_map(|s| s.datasets())
        .map(|d| d.bytes.div_ceil(1 << shift))
        .sum();
    let frames_per_chiplet = cfg
        .frames_per_chiplet
        .unwrap_or(((total_pages * 2 / n as u64) + 512) as usize);
    let mut frames: Vec<FrameAllocator> = (0..n)
        .map(|_| FrameAllocator::new(frames_per_chiplet))
        .collect();

    let use_barre = cfg.mode.uses_barre();
    let demand = cfg.demand_paging.is_some();
    let mut driver = BarreAllocator::new(coal_mode_of(cfg), cfg.mode.max_merged());
    // One page table per app, one plan/PEC per dataset, and the CTA
    // count is known per spec up front — size everything exactly.
    let n_datasets: usize = specs.iter().map(|s| s.datasets().len()).sum();
    let total_ctas: usize = specs
        .iter()
        .map(|s| s.n_ctas(cfg.topology.total_cus()) as usize)
        .sum();
    let mut page_tables = Vec::with_capacity(specs.len());
    let mut master_pecs: Vec<PecEntry> = Vec::with_capacity(n_datasets);
    let mut plans: Vec<MappingPlan> = Vec::with_capacity(n_datasets);
    let mut ctas = Vec::with_capacity(total_ctas);
    let mut next_cta = 0u32;

    for (asid, spec) in specs.iter().enumerate() {
        let asid = asid as u16;
        let mut va = VirtAllocator::new();
        let mut pt = PageTable::new(asid);
        let mut bases = Vec::new();
        for decl in spec.datasets() {
            let pages = decl.bytes.div_ceil(1 << shift).max(1);
            let (_, range) = va.alloc(pages);
            bases.push(range.start.base_addr(shift));
            let hint = decl.hint(shift, n);
            let plan: MappingPlan = cfg.policy.plan(asid, range, hint, n);
            if demand {
                // On-demand paging: nothing premapped; the PEC record is
                // still programmed (the driver knows the layout).
                if use_barre {
                    master_pecs.push(plan.pec_entry());
                }
            } else if use_barre {
                let out = driver.allocate(&plan, &mut frames).map_err(|e| match e {
                    AllocError::OutOfMemory(c) => SimError::OutOfFrames { chiplet: c.0 },
                    AllocError::VpnOutsidePlan { asid, vpn } => {
                        SimError::VpnOutsidePlan { asid, vpn }
                    }
                })?;
                for (v, pte) in out.ptes {
                    pt.map(v, pte);
                }
                master_pecs.push(out.pec);
            } else {
                allocate_plain(&plan, &mut frames, &mut pt)?;
            }
            plans.push(plan);
        }
        let n_ctas = spec.n_ctas(cfg.topology.total_cus());
        for cta in 0..n_ctas {
            let home = cfg.policy.cta_home(cta, n_ctas, n).chiplet;
            let pattern = spec.cta_pattern(cta, n_ctas, &bases, seed ^ ((asid as u64) << 32));
            ctas.push(Cta {
                id: CtaId(next_cta),
                asid,
                home,
                pattern,
            });
            next_cta += 1;
        }
        page_tables.push(pt);
    }
    // Interleave multi-app CTAs so co-running kernels share CUs
    // fine-grained (§VII-I) rather than running back to back.
    if specs.len() > 1 {
        ctas.sort_by_key(|c| (c.id.0 % 97, c.id.0));
    }
    let sched = CtaScheduler::new(n, ctas);
    Ok(Machine::assemble(
        cfg.clone(),
        page_tables,
        frames,
        master_pecs,
        plans,
        sched,
        seed,
    ))
}

/// Default driver allocation: each page individually on its planned
/// chiplet, no coalescing bits.
fn allocate_plain(
    plan: &MappingPlan,
    frames: &mut [FrameAllocator],
    pt: &mut PageTable,
) -> Result<(), SimError> {
    for vpn in plan.range.iter() {
        let chiplet = plan.chiplet_of(vpn).ok_or(SimError::VpnOutsidePlan {
            asid: plan.asid,
            vpn,
        })?;
        let local = frames[chiplet.index()]
            .alloc_any()
            .ok_or(SimError::OutOfFrames { chiplet: chiplet.0 })?;
        let pfn = GlobalPfn::compose(chiplet, local);
        pt.map(vpn, Pte::new(pfn, PteFlags::default()));
    }
    Ok(())
}

/// Runs one application under `cfg`.
///
/// # Errors
///
/// Everything [`build_machine`] and [`Machine::run`] can report.
pub fn run_app(app: AppId, cfg: &SystemConfig, seed: u64) -> Result<RunMetrics, SimError> {
    run_spec(app.spec(), cfg, seed)
}

/// Runs one workload spec under `cfg`.
///
/// # Errors
///
/// Everything [`build_machine`] and [`Machine::run`] can report.
pub fn run_spec(spec: WorkloadSpec, cfg: &SystemConfig, seed: u64) -> Result<RunMetrics, SimError> {
    build_machine(&[spec], cfg, seed)?.run()
}

/// Runs one application with the lifecycle tracer attached, returning
/// the measurements and the recorded trace (stage/chiplet latency
/// histograms, span ring, time-series samples).
///
/// Tracing is passive: the `RunMetrics` here are byte-identical to an
/// untraced [`run_app`] of the same `(app, cfg, seed)`.
///
/// # Errors
///
/// Everything [`build_machine`] and [`Machine::run`] can report.
pub fn trace_app(
    app: AppId,
    cfg: &SystemConfig,
    seed: u64,
    opts: &TraceOptions,
) -> Result<(RunMetrics, Box<TraceRecorder>), SimError> {
    build_machine(&[app.spec()], cfg, seed)?.run_traced(opts)
}

/// One independent simulation job for [`run_batch`]: a workload, a
/// configuration, and a seed.
pub type BatchJob = (WorkloadSpec, SystemConfig, u64);

/// A batch job plus the human label every harness (inline sweep, the
/// crash-isolated supervisor, journal records) uses for it. Keeping the
/// label on the job — rather than re-deriving it per frontend — is what
/// makes a resumed sweep's rows match an uninterrupted run's exactly.
#[derive(Debug, Clone)]
pub struct LabeledJob {
    /// Display/journal label, e.g. `"gups/fbarre"` or `"gups/drop=0.01"`.
    pub label: String,
    /// The simulation to run.
    pub job: BatchJob,
}

/// The canonical job list of `barre sweep`: per app, a baseline run then
/// a `cfg.mode` run. Every execution path (in-process pool, supervised
/// children, `--job-index` replay) derives its work from this one
/// function, so a job index means the same simulation everywhere.
pub fn sweep_jobs(apps: &[AppId], cfg: &SystemConfig, seed: u64) -> Vec<LabeledJob> {
    let base_cfg = cfg.clone().with_mode(TranslationMode::Baseline);
    apps.iter()
        .flat_map(|app| {
            [
                LabeledJob {
                    label: format!("{app}/baseline"),
                    job: (app.spec(), base_cfg.clone(), seed),
                },
                LabeledJob {
                    label: format!("{app}/{}", cfg.mode.label()),
                    job: (app.spec(), cfg.clone(), seed),
                },
            ]
        })
        .collect()
}

/// The canonical job list of `barre chaos`: one run per ATS-request drop
/// rate. Same single-source-of-truth contract as [`sweep_jobs`].
pub fn chaos_jobs(app: AppId, cfg: &SystemConfig, seed: u64, rates: &[f64]) -> Vec<LabeledJob> {
    rates
        .iter()
        .map(|&rate| {
            let plan = barre_sim::FaultPlan {
                ats_request_drop: rate,
                ..barre_sim::FaultPlan::none()
            };
            LabeledJob {
                label: format!("{app}/drop={rate}"),
                job: (app.spec(), cfg.clone().with_fault_plan(plan), seed),
            }
        })
        .collect()
}

/// Runs a batch of independent `(spec, cfg, seed)` simulations across
/// `threads` pool workers ([`barre_sim::pool`]), returning each job's
/// own `Result` in input order. Every simulation stays single-threaded
/// and deterministic — the batch output is identical at any `threads`.
///
/// # Errors
///
/// [`SimError::WorkerPanicked`] when a pool worker died; per-job
/// simulation failures come back inside the vector, not as an `Err`.
pub fn run_batch(
    jobs: Vec<BatchJob>,
    threads: usize,
) -> Result<Vec<Result<RunMetrics, SimError>>, SimError> {
    let closures: Vec<_> = jobs
        .into_iter()
        .map(|(spec, cfg, seed)| move || run_spec(spec, &cfg, seed))
        .collect();
    barre_sim::pool::run_ordered(closures, threads).map_err(SimError::from)
}

/// Runs an application pair concurrently (multi-programming, §VII-I).
///
/// # Errors
///
/// Everything [`build_machine`] and [`Machine::run`] can report.
pub fn run_pair(pair: AppPair, cfg: &SystemConfig, seed: u64) -> Result<RunMetrics, SimError> {
    build_machine(&[pair.a.spec(), pair.b.spec()], cfg, seed)?.run()
}

/// A tiny smoke workload used by unit/integration tests: a strided kernel
/// small enough to finish in well under a second in debug builds.
pub fn smoke_config() -> SystemConfig {
    let mut cfg = SystemConfig::scaled();
    cfg.topology = barre_gpu::Topology {
        n_chiplets: 4,
        sas_per_chiplet: 1,
        cus_per_sa: 2,
    };
    cfg.cu_slots = 6;
    cfg.max_warps_per_cta = Some(120);
    cfg
}

/// Ignore-the-details helper for examples: pretty-prints a metrics
/// one-liner.
pub fn summary_line(label: &str, m: &RunMetrics) -> String {
    format!(
        "{label:<18} cycles={:<12} MPKI={:<8.2} ATS={:<8} walks={:<8} coalesced={:<8} intra-MCM={:<8} remote-data={:.1}%",
        m.total_cycles,
        m.mpki(),
        m.ats_requests,
        m.walks,
        m.coalesced_translations,
        m.intra_mcm_translations,
        m.remote_access_rate() * 100.0
    )
}

// `VirtAddr` is used in doc examples.
#[allow(unused_imports)]
use barre_mem::Vpn;
const _: fn() -> VirtAddr = || VirtAddr(0);

#[cfg(test)]
mod tests {
    use super::{run_app as try_run_app, run_pair as try_run_pair, *};
    use crate::config::FBarreConfig;
    use crate::metrics::speedup;

    fn run_app(app: AppId, cfg: &SystemConfig, seed: u64) -> RunMetrics {
        try_run_app(app, cfg, seed).expect("run failed")
    }

    fn run_pair(pair: AppPair, cfg: &SystemConfig, seed: u64) -> RunMetrics {
        try_run_pair(pair, cfg, seed).expect("run failed")
    }

    #[test]
    fn baseline_smoke_run_completes() {
        let cfg = smoke_config();
        let m = run_app(AppId::Gemv, &cfg, 1);
        assert!(m.total_cycles > 0);
        assert!(m.warp_instructions > 0);
        assert!(m.data_accesses > 0);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = smoke_config();
        let a = run_app(AppId::Jac2d, &cfg, 5);
        let b = run_app(AppId::Jac2d, &cfg, 5);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses);
        assert_eq!(a.ats_requests, b.ats_requests);
    }

    #[test]
    fn barre_coalesces_on_synchronized_app() {
        // Stencil slices progress in lockstep across chiplets, so group
        // members reach the PW-queue together — the condition Barre's
        // IOMMU-side coalescing exploits (§IV-B). Needs enough run
        // length for the queue to back up, so use the scaled config with
        // a modest warp cap.
        let mut cfg = crate::config::SystemConfig::scaled();
        cfg.max_warps_per_cta = Some(400);
        let barre = run_app(
            AppId::St2d,
            &cfg.clone().with_mode(TranslationMode::Barre),
            2,
        );
        assert!(barre.coalesced_translations > 0, "no coalescing happened");
        assert_eq!(
            barre.walks + barre.coalesced_translations,
            barre.ats_requests,
            "every ATS answered by exactly one walk or calculation"
        );
    }

    #[test]
    fn fbarre_cuts_ats_traffic() {
        let cfg = smoke_config();
        let base = run_app(AppId::Bicg, &cfg, 3);
        let fb = run_app(
            AppId::Bicg,
            &cfg.clone()
                .with_mode(TranslationMode::FBarre(FBarreConfig::default())),
            3,
        );
        assert!(fb.intra_mcm_translations > 0, "no intra-MCM translations");
        assert!(
            fb.ats_requests < base.ats_requests,
            "ATS {} !< {}",
            fb.ats_requests,
            base.ats_requests
        );
        assert!(speedup(&base, &fb) > 0.5);
    }

    #[test]
    fn tracing_is_passive() {
        // Recording must not perturb the simulation: metrics digests of
        // a traced and an untraced run of the same (app, cfg, seed) are
        // identical, and the recorder actually saw the journey.
        let cfg = smoke_config();
        let plain = run_app(AppId::Gups, &cfg, 7);
        let (traced, rec) = trace_app(AppId::Gups, &cfg, 7, &barre_trace::TraceOptions::default())
            .expect("traced run failed");
        assert_eq!(
            crate::journal::metrics_digest(&plain),
            crate::journal::metrics_digest(&traced)
        );
        assert!(rec.ring().recorded() > 0, "no spans recorded");
        assert!(
            rec.stage_histogram(barre_trace::Stage::CuIssue).count() > 0,
            "no journeys recorded"
        );
    }

    #[test]
    fn multi_app_pair_runs() {
        let cfg = smoke_config();
        let pair = AppPair {
            a: AppId::Gemv,
            b: AppId::Gups,
        };
        let m = run_pair(pair, &cfg, 4);
        assert!(m.total_cycles > 0);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = smoke_config();
        cfg.l2_tlb_ways = 0;
        let err = try_run_app(AppId::Gemv, &cfg, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn frame_exhaustion_is_an_error_not_a_panic() {
        let mut cfg = smoke_config();
        cfg.frames_per_chiplet = Some(1); // far too small for any app
        let err = try_run_app(AppId::Gemv, &cfg, 1).unwrap_err();
        assert!(matches!(err, SimError::OutOfFrames { .. }), "{err}");
    }
}
