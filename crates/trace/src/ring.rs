//! Bounded span ring with deterministic drop accounting.
//!
//! Once the ring is full, each new span overwrites the oldest one and
//! bumps the `dropped` counter. Because the simulation driving the ring
//! is single-threaded and cycle-deterministic, the retained window and
//! the drop count are byte-identical across runs and `--jobs` settings.

use crate::Span;

/// Fixed-capacity ring of completed stage spans.
#[derive(Debug, Clone)]
pub struct SpanRing {
    cap: usize,
    spans: Vec<Span>,
    /// Next write position once the ring has wrapped.
    cursor: usize,
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring retaining at most `cap` spans (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            spans: Vec::new(),
            cursor: 0,
            dropped: 0,
        }
    }

    /// Retention capacity in spans.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a span, overwriting the oldest (and counting it as
    /// dropped) when full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.spans[self.cursor] = span;
            self.cursor = (self.cursor + 1) % self.cap;
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Spans currently retained, oldest first (recording order).
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        let (tail, head) = self.spans.split_at(self.cursor.min(self.spans.len()));
        head.iter().chain(tail.iter())
    }

    /// Number of spans overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total spans ever pushed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        (self.spans.len() as u64).saturating_add(self.dropped)
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    fn span(id: u64) -> Span {
        Span {
            id,
            chiplet: 0,
            stage: Stage::TlbL1,
            start: id * 10,
            end: id * 10 + 5,
        }
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = SpanRing::new(4);
        for i in 0..3 {
            r.push(span(i));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.recorded(), 3);
        let ids: Vec<_> = r.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_drops_oldest_in_order() {
        let mut r = SpanRing::new(3);
        for i in 0..5 {
            r.push(span(i));
        }
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
        let ids: Vec<_> = r.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = SpanRing::new(0);
        r.push(span(7));
        r.push(span(8));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().next().map(|s| s.id), Some(8));
    }
}
