//! `barre-trace` — deterministic translation-path tracing.
//!
//! The simulator's argument lives in the translation path (L1/L2 TLB,
//! PTW queueing, ATS/PCIe round-trips), yet aggregate `RunMetrics`
//! can't say *where* cycles go inside a run. This crate provides the
//! observability layer:
//!
//! * a per-request **lifecycle tracer** stamping each memory request's
//!   journey (CU issue → L1 TLB → L2 TLB → PEC lookup → IOMMU/ATS →
//!   PTW → fill) into a bounded ring with deterministic drop
//!   accounting ([`ring::SpanRing`]);
//! * **fixed-boundary log-bucketed latency histograms** per stage and
//!   per chiplet ([`hist::LatencyHistogram`]), plus cycle-windowed
//!   time-series [`Sample`]s taken on the sanitizer's 65536-event
//!   cadence;
//! * exporters to Chrome-trace/Perfetto JSON and compact JSONL
//!   ([`export`]).
//!
//! Everything is keyed on **sim cycles** — this crate never reads the
//! wall clock and has no entropy source, so for a fixed seed the
//! exported bytes are identical across runs, hosts, and `--jobs`
//! settings. Instrumentation goes through the enum-dispatch
//! [`Tracer`]: the [`Tracer::Noop`] arms compile to a discriminant
//! test, keeping the untraced hot path on its current profile.

pub mod export;
pub mod hist;
pub mod ring;

pub use hist::LatencyHistogram;
pub use ring::SpanRing;

/// Simulation timestamp, in cycles (mirrors `barre_sim::Cycle` without
/// taking a dependency — this crate is deliberately standalone).
pub type Cycle = u64;

/// A stage of a memory request's translation journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Whole journey: from CU issue of the access to its translation
    /// resolving (L1 hit, peer hit, L2 hit, or fill wake-up). The
    /// top-N slowest journeys in `barre report` are the longest spans
    /// of this stage.
    CuIssue = 0,
    /// L1 (per-CU) TLB lookup.
    TlbL1 = 1,
    /// L2 (per-chiplet) TLB lookup.
    TlbL2 = 2,
    /// Coalescing-group / PEC calculation serving an L2 miss locally.
    PecLookup = 3,
    /// ATS round trip over PCIe (request out to response back).
    AtsPcie = 4,
    /// Page-table walk (IOMMU PTW or per-chiplet GMMU walker), from
    /// walker start to response ready.
    Ptw = 5,
    /// L2-miss fill: from miss detection to the translation being
    /// filled and waiters woken.
    Fill = 6,
}

impl Stage {
    /// All stages, in journey order.
    pub const ALL: [Stage; 7] = [
        Stage::CuIssue,
        Stage::TlbL1,
        Stage::TlbL2,
        Stage::PecLookup,
        Stage::AtsPcie,
        Stage::Ptw,
        Stage::Fill,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable machine-readable name (used by exporters, `--filter`, and
    /// `barre report`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::CuIssue => "cu-issue",
            Stage::TlbL1 => "tlb-l1",
            Stage::TlbL2 => "tlb-l2",
            Stage::PecLookup => "pec",
            Stage::AtsPcie => "ats-pcie",
            Stage::Ptw => "ptw",
            Stage::Fill => "fill",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One completed stage of one request's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Journey id: the request's trace id for CU/TLB/PEC/fill stages,
    /// or the ATS request id (offset into a disjoint namespace by the
    /// machine) for ATS/PTW infrastructure spans.
    pub id: u64,
    /// Chiplet the stage executed on.
    pub chiplet: u16,
    /// Which stage completed.
    pub stage: Stage,
    /// Stage start, in sim cycles.
    pub start: Cycle,
    /// Stage end, in sim cycles (`end ≥ start`).
    pub end: Cycle,
}

/// A cycle-windowed counter snapshot, taken every 65536 processed
/// events (the sanitizer cadence). All fields are cumulative since the
/// start of the run; consumers difference adjacent samples to get
/// per-window rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Sim cycle at the snapshot.
    pub cycle: Cycle,
    /// Events processed so far.
    pub events: u64,
    /// Cumulative L1 TLB hits (all CUs).
    pub l1_hits: u64,
    /// Cumulative L1 TLB misses.
    pub l1_misses: u64,
    /// Cumulative L2 TLB hits (all chiplets).
    pub l2_hits: u64,
    /// Cumulative L2 TLB misses.
    pub l2_misses: u64,
    /// ATS requests currently in flight.
    pub ats_in_flight: u64,
    /// Cumulative PCIe bytes (both directions).
    pub pcie_bytes: u64,
    /// Cumulative mesh + filter-VC bytes.
    pub mesh_bytes: u64,
    /// Cumulative event-queue calendar-wheel overflow spills.
    pub queue_spills: u64,
    /// Cumulative overflow entries rebinned back into the wheel.
    pub queue_rebins: u64,
    /// Adaptive wheel growths performed so far.
    pub queue_growths: u64,
    /// Current calendar-wheel bucket count.
    pub queue_buckets: u64,
}

/// Bitmask over [`Stage`]s, used for `--filter stage=...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMask(u8);

impl StageMask {
    /// Mask accepting every stage.
    pub fn all() -> Self {
        StageMask((1 << Stage::COUNT) - 1)
    }

    /// Mask accepting nothing.
    pub fn none() -> Self {
        StageMask(0)
    }

    /// Adds `stage` to the mask.
    pub fn insert(&mut self, stage: Stage) {
        self.0 |= 1 << stage.index();
    }

    /// Whether `stage` is accepted.
    pub fn contains(self, stage: Stage) -> bool {
        self.0 & (1 << stage.index()) != 0
    }

    /// Parses a comma-separated stage-name list (`"ptw,ats-pcie"`).
    /// Returns `None` if any name is unknown.
    pub fn parse(list: &str) -> Option<Self> {
        let mut mask = StageMask::none();
        for part in list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            mask.insert(Stage::from_name(part)?);
        }
        Some(mask)
    }
}

impl Default for StageMask {
    fn default() -> Self {
        Self::all()
    }
}

/// Recorder configuration.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Span-ring retention window (spans). `barre trace --window N`.
    pub window: usize,
    /// Which stages are recorded into the span ring. Histograms always
    /// see every stage regardless of the filter, so percentiles stay
    /// complete.
    pub filter: StageMask,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            window: 65_536,
            filter: StageMask::all(),
        }
    }
}

/// The recording backend behind [`Tracer::Recording`].
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    filter: StageMask,
    ring: SpanRing,
    /// Per-stage latency histograms over the whole machine.
    stage_hist: [LatencyHistogram; Stage::COUNT],
    /// Per-chiplet, per-stage histograms (indexed by chiplet id; grown
    /// on demand).
    chiplet_hist: Vec<[LatencyHistogram; Stage::COUNT]>,
    samples: Vec<Sample>,
    /// Spans skipped by the stage filter (not counted as ring drops).
    filtered: u64,
}

impl TraceRecorder {
    /// Creates a recorder with the given options.
    pub fn new(opts: &TraceOptions) -> Self {
        Self {
            filter: opts.filter,
            ring: SpanRing::new(opts.window),
            stage_hist: Default::default(),
            chiplet_hist: Vec::new(),
            samples: Vec::new(),
            filtered: 0,
        }
    }

    /// Records a completed stage span: always folded into the stage and
    /// chiplet histograms; retained in the ring only if the stage
    /// passes the filter.
    pub fn span(&mut self, stage: Stage, id: u64, chiplet: u16, start: Cycle, end: Cycle) {
        let latency = end.saturating_sub(start);
        self.stage_hist[stage.index()].record(latency);
        let c = chiplet as usize;
        if self.chiplet_hist.len() <= c {
            self.chiplet_hist.resize_with(c + 1, Default::default);
        }
        self.chiplet_hist[c][stage.index()].record(latency);
        if self.filter.contains(stage) {
            self.ring.push(Span {
                id,
                chiplet,
                stage,
                start,
                end,
            });
        } else {
            self.filtered = self.filtered.saturating_add(1);
        }
    }

    /// Appends a time-series sample.
    pub fn sample(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The span ring.
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// Per-stage histogram (whole machine).
    pub fn stage_histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stage_hist[stage.index()]
    }

    /// Per-chiplet stage histograms, indexed by chiplet id.
    pub fn chiplet_histograms(&self) -> &[[LatencyHistogram; Stage::COUNT]] {
        &self.chiplet_hist
    }

    /// Recorded time-series samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Spans excluded by the stage filter.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }
}

/// Enum-dispatch tracer threaded through the machine. [`Tracer::Noop`]
/// keeps every call site to a discriminant test so the untraced hot
/// path is unperturbed; [`Tracer::Recording`] forwards to a boxed
/// [`TraceRecorder`].
#[derive(Debug, Default)]
pub enum Tracer {
    /// Tracing disabled (the default).
    #[default]
    Noop,
    /// Tracing enabled.
    Recording(Box<TraceRecorder>),
}

impl Tracer {
    /// Creates a recording tracer with `opts`.
    pub fn recording(opts: &TraceOptions) -> Self {
        Tracer::Recording(Box::new(TraceRecorder::new(opts)))
    }

    /// Whether spans/samples are being recorded. Callers gate any
    /// non-trivial argument computation on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Tracer::Recording(_))
    }

    /// Records a completed stage span (no-op when disabled).
    #[inline]
    pub fn span(&mut self, stage: Stage, id: u64, chiplet: u16, start: Cycle, end: Cycle) {
        if let Tracer::Recording(r) = self {
            r.span(stage, id, chiplet, start, end);
        }
    }

    /// Records a time-series sample (no-op when disabled).
    #[inline]
    pub fn sample(&mut self, sample: Sample) {
        if let Tracer::Recording(r) = self {
            r.sample(sample);
        }
    }

    /// Takes the recorder out, leaving `Noop`. `None` if disabled.
    pub fn take_recorder(&mut self) -> Option<Box<TraceRecorder>> {
        match std::mem::take(self) {
            Tracer::Recording(r) => Some(r),
            Tracer::Noop => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn stage_mask_parse_and_filter() {
        let m = StageMask::parse("ptw,ats-pcie").expect("valid list");
        assert!(m.contains(Stage::Ptw));
        assert!(m.contains(Stage::AtsPcie));
        assert!(!m.contains(Stage::TlbL1));
        assert!(StageMask::parse("ptw,nope").is_none());
        assert!(StageMask::all().contains(Stage::Fill));
    }

    #[test]
    fn noop_tracer_records_nothing() {
        let mut t = Tracer::Noop;
        assert!(!t.is_enabled());
        t.span(Stage::TlbL1, 1, 0, 0, 10);
        t.sample(Sample::default());
        assert!(t.take_recorder().is_none());
    }

    #[test]
    fn recorder_histograms_ignore_filter_but_ring_honors_it() {
        let opts = TraceOptions {
            window: 8,
            filter: StageMask::parse("ptw").expect("valid"),
        };
        let mut t = Tracer::recording(&opts);
        assert!(t.is_enabled());
        t.span(Stage::TlbL1, 1, 0, 100, 104);
        t.span(Stage::Ptw, 2, 1, 100, 400);
        let r = t.take_recorder().expect("recording");
        assert_eq!(r.stage_histogram(Stage::TlbL1).count(), 1);
        assert_eq!(r.stage_histogram(Stage::Ptw).count(), 1);
        assert_eq!(r.ring().len(), 1);
        assert_eq!(r.filtered(), 1);
        assert_eq!(r.chiplet_histograms().len(), 2);
        assert_eq!(r.chiplet_histograms()[1][Stage::Ptw.index()].count(), 1);
    }

    #[test]
    fn per_chiplet_histograms_grow_on_demand() {
        let mut t = Tracer::recording(&TraceOptions::default());
        t.span(Stage::Fill, 9, 3, 0, 50);
        let r = t.take_recorder().expect("recording");
        assert_eq!(r.chiplet_histograms().len(), 4);
        assert_eq!(r.chiplet_histograms()[3][Stage::Fill.index()].count(), 1);
        assert_eq!(r.chiplet_histograms()[0][Stage::Fill.index()].count(), 0);
    }
}
