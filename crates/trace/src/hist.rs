//! HDR-style log-bucketed latency histogram with *fixed* bucket
//! boundaries, so serialized output is byte-stable across runs, hosts,
//! and thread counts.
//!
//! The bucket layout uses 3 bits of sub-bucket resolution per power of
//! two (relative quantization error ≤ 1/8 = 12.5%):
//!
//! * values `0..8` land in their own exact bucket (indices `0..8`);
//! * for `v ≥ 8`, the bucket index is derived from the position of the
//!   most significant bit and the next three bits below it, giving
//!   8 sub-buckets per octave.
//!
//! The full `u64` range maps onto exactly [`BUCKETS`] buckets, so the
//! boundary table is a pure function of the index — nothing about it
//! depends on the data, which is what makes snapshots byte-stable.

/// Sub-bucket resolution bits per power of two.
pub const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total number of buckets covering the whole `u64` range.
pub const BUCKETS: usize = 496;

/// Bucket index of `value` (total order, contiguous, zero-based).
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as u64;
    let shift = msb - SUB_BITS as u64;
    let top = value >> shift; // in [SUB_COUNT, 2*SUB_COUNT)
    (shift as usize + 1) * SUB_COUNT as usize + (top - SUB_COUNT) as usize
}

/// Smallest value mapping to bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    if index < SUB_COUNT as usize {
        return index as u64;
    }
    let shift = (index - SUB_COUNT as usize) / SUB_COUNT as usize;
    let pos = ((index - SUB_COUNT as usize) % SUB_COUNT as usize) as u64;
    (SUB_COUNT + pos) << shift
}

/// Largest value mapping to bucket `index` (inclusive).
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

/// A fixed-boundary log-bucketed histogram for stage latencies.
///
/// Tracks exact `count`, `sum` (u128, overflow-proof over any run
/// length), `min`, and `max` alongside the bucket counts; quantiles are
/// answered from bucket upper bounds, so they are deterministic and at
/// most one sub-bucket (12.5%) above the true value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (in sim cycles).
    pub fn record(&mut self, value: u64) {
        let b = bucket_index(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] = self.counts[b].saturating_add(1);
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value as u128);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Deterministic quantile estimate: the upper boundary of the bucket
    /// holding the sample of rank `ceil(q * count)`. Exact for values
    /// below [`SUB_COUNT`]; otherwise at most 12.5% above the true value.
    /// `q` is clamped to `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without floating error at the boundaries we care about.
        let mut rank = (q * self.count as f64).ceil() as u64;
        rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                // Never report beyond the observed maximum.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (used by `barre merge` and the report
    /// aggregator). Bucket-wise saturating addition; min/max widen.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(src);
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// `(bucket_index, count)` pairs for nonempty buckets, in index order.
    pub fn nonempty(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuilds a histogram from serialized `(bucket_index, count)` pairs
    /// plus the exact aggregates. Out-of-range indices are ignored;
    /// `count` is recomputed from the pairs so the result is always
    /// internally consistent.
    pub fn from_parts(pairs: &[(usize, u64)], sum: u128, min: u64, max: u64) -> Self {
        let mut h = Self {
            sum,
            min,
            max,
            ..Self::default()
        };
        for &(i, c) in pairs {
            if i >= BUCKETS || c == 0 {
                continue;
            }
            if h.counts.len() <= i {
                h.counts.resize(i + 1, 0);
            }
            h.counts[i] = h.counts[i].saturating_add(c);
            h.count = h.count.saturating_add(c);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn boundaries_are_contiguous_and_monotonic() {
        for i in 1..BUCKETS {
            assert!(bucket_lower(i) > bucket_lower(i - 1), "bucket {i}");
            assert_eq!(bucket_upper(i - 1) + 1, bucket_lower(i), "bucket {i}");
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn every_value_lands_inside_its_bucket() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            255,
            256,
            1000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let b = bucket_index(v);
            assert!(b < BUCKETS, "{v} -> {b}");
            assert!(bucket_lower(b) <= v && v <= bucket_upper(b), "{v} -> {b}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 1 << 33] {
            let b = bucket_index(v);
            let upper = bucket_upper(b);
            assert!((upper - v) as f64 / v as f64 <= 0.125, "{v} vs {upper}");
        }
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.p50();
        assert!((50..=64).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((99..=112).contains(&p99), "p99={p99}");
        // Quantiles never exceed the observed max.
        assert!(h.quantile(1.0) <= 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [3u64, 9, 1000, 12] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 500_000, 77] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 5, 8, 300, 1 << 20] {
            h.record(v);
        }
        let pairs: Vec<_> = h.nonempty().collect();
        let back = LatencyHistogram::from_parts(&pairs, h.sum(), h.min(), h.max());
        assert_eq!(h, back);
    }
}
