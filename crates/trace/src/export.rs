//! Exporters: Chrome-trace/Perfetto JSON and compact JSONL.
//!
//! Both formats are rendered with hand-rolled serialization (no
//! dependencies) and deterministic field/element order, so for a fixed
//! seed the output is byte-identical across runs. All numbers are
//! plain decimal integers — the JSONL form round-trips exactly through
//! `barre_system::journal`'s source-text number handling.

use std::fmt::Write as _;

use crate::{LatencyHistogram, Sample, Span, Stage, TraceRecorder};

/// Schema tag stamped into both export formats.
pub const SCHEMA: &str = "barre-trace/1";

/// Run identification attached to an export.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// Workload name (e.g. `gemv`).
    pub app: String,
    /// Translation mode (`baseline`/`barre`/`fbarre`).
    pub mode: String,
    /// Simulation seed.
    pub seed: u64,
    /// Span-ring window the trace was recorded with.
    pub window: u64,
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one histogram as a JSON object:
/// `{"buckets":[[index,count],…],"count":N,"sum":N,"min":N,"max":N}`.
fn hist_json(h: &LatencyHistogram) -> String {
    let mut out = String::from("{\"buckets\":[");
    for (i, (b, c)) in h.nonempty().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{b},{c}]");
    }
    let _ = write!(
        out,
        "],\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max()
    );
    out
}

fn sample_json(s: &Sample) -> String {
    format!(
        "{{\"cycle\":{},\"events\":{},\"l1_hits\":{},\"l1_misses\":{},\"l2_hits\":{},\
         \"l2_misses\":{},\"ats_in_flight\":{},\"pcie_bytes\":{},\"mesh_bytes\":{},\
         \"queue_spills\":{},\"queue_rebins\":{},\"queue_growths\":{},\"queue_buckets\":{}}}",
        s.cycle,
        s.events,
        s.l1_hits,
        s.l1_misses,
        s.l2_hits,
        s.l2_misses,
        s.ats_in_flight,
        s.pcie_bytes,
        s.mesh_bytes,
        s.queue_spills,
        s.queue_rebins,
        s.queue_growths,
        s.queue_buckets
    )
}

/// Spans in deterministic display order: by start cycle, then end,
/// chiplet, journey id, and stage index. This also gives the exported
/// `traceEvents` a monotonically nondecreasing `ts`.
fn sorted_spans(rec: &TraceRecorder) -> Vec<Span> {
    let mut spans: Vec<Span> = rec.ring().iter().copied().collect();
    spans.sort_by_key(|s| (s.start, s.end, s.chiplet, s.id, s.stage.index()));
    spans
}

fn barre_section(rec: &TraceRecorder, meta: &TraceMeta) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{}\",\"app\":\"{}\",\"mode\":\"{}\",\"seed\":{},\"window\":{},\
         \"spans_recorded\":{},\"spans_dropped\":{},\"spans_filtered\":{}",
        SCHEMA,
        escape(&meta.app),
        escape(&meta.mode),
        meta.seed,
        meta.window,
        rec.ring().recorded(),
        rec.ring().dropped(),
        rec.filtered()
    );
    out.push_str(",\"stage_histograms\":{");
    for (i, stage) in Stage::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{}",
            stage.name(),
            hist_json(rec.stage_histogram(*stage))
        );
    }
    out.push_str("},\"chiplet_histograms\":[");
    for (c, per_stage) in rec.chiplet_histograms().iter().enumerate() {
        if c > 0 {
            out.push(',');
        }
        out.push('{');
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                stage.name(),
                hist_json(&per_stage[stage.index()])
            );
        }
        out.push('}');
    }
    out.push_str("],\"samples\":[");
    for (i, s) in rec.samples().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sample_json(s));
    }
    out.push_str("]}");
    out
}

/// Renders a Chrome-trace (Perfetto-loadable) JSON document.
///
/// Each retained span becomes a complete (`"ph":"X"`) event with
/// `ts`/`dur` in sim cycles, `pid` = chiplet, `tid` = journey id. The
/// run's histograms, time-series samples, and drop accounting ride in
/// a top-level `"barre"` object that Perfetto ignores but
/// `barre report` reads back.
pub fn chrome_trace(rec: &TraceRecorder, meta: &TraceMeta) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in sorted_spans(rec).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"translate\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{}}}",
            s.stage.name(),
            s.start,
            s.end.saturating_sub(s.start),
            s.chiplet,
            s.id
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"barre\":");
    out.push_str(&barre_section(rec, meta));
    out.push_str("}\n");
    out
}

/// Renders the compact JSONL stream: one `meta` line, the per-stage and
/// per-chiplet `hist` lines, the `sample` lines, then one `span` line
/// per retained span (deterministic order throughout).
pub fn jsonl(rec: &TraceRecorder, meta: &TraceMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"t\":\"meta\",\"schema\":\"{}\",\"app\":\"{}\",\"mode\":\"{}\",\"seed\":{},\
         \"window\":{},\"spans_recorded\":{},\"spans_dropped\":{},\"spans_filtered\":{}}}",
        SCHEMA,
        escape(&meta.app),
        escape(&meta.mode),
        meta.seed,
        meta.window,
        rec.ring().recorded(),
        rec.ring().dropped(),
        rec.filtered()
    );
    for stage in Stage::ALL {
        let _ = writeln!(
            out,
            "{{\"t\":\"hist\",\"scope\":\"stage\",\"stage\":\"{}\",\"hist\":{}}}",
            stage.name(),
            hist_json(rec.stage_histogram(stage))
        );
    }
    for (c, per_stage) in rec.chiplet_histograms().iter().enumerate() {
        for stage in Stage::ALL {
            let _ = writeln!(
                out,
                "{{\"t\":\"hist\",\"scope\":\"chiplet\",\"chiplet\":{},\"stage\":\"{}\",\
                 \"hist\":{}}}",
                c,
                stage.name(),
                hist_json(&per_stage[stage.index()])
            );
        }
    }
    for s in rec.samples() {
        let _ = writeln!(out, "{{\"t\":\"sample\",\"sample\":{}}}", sample_json(s));
    }
    for s in sorted_spans(rec) {
        let _ = writeln!(
            out,
            "{{\"t\":\"span\",\"stage\":\"{}\",\"id\":{},\"chiplet\":{},\"start\":{},\"end\":{}}}",
            s.stage.name(),
            s.id,
            s.chiplet,
            s.start,
            s.end
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StageMask, TraceOptions, Tracer};

    fn recorder_with_spans() -> Box<TraceRecorder> {
        let mut t = Tracer::recording(&TraceOptions {
            window: 16,
            filter: StageMask::all(),
        });
        t.span(Stage::CuIssue, 1, 0, 5, 9);
        t.span(Stage::TlbL1, 1, 0, 9, 13);
        t.span(Stage::Ptw, 1_000_000_001, 2, 20, 320);
        t.sample(Sample {
            cycle: 100,
            events: 65_536,
            l1_hits: 10,
            l1_misses: 2,
            l2_hits: 1,
            l2_misses: 1,
            ats_in_flight: 3,
            pcie_bytes: 256,
            mesh_bytes: 64,
            ..Sample::default()
        });
        t.take_recorder().expect("recording")
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            app: "gemv".into(),
            mode: "barre".into(),
            seed: 42,
            window: 16,
        }
    }

    #[test]
    fn chrome_trace_shape_and_monotonic_ts() {
        let doc = chrome_trace(&recorder_with_spans(), &meta());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"barre\":{\"schema\":\"barre-trace/1\""));
        // ts values appear in nondecreasing order.
        let ts: Vec<u64> = doc
            .match_indices("\"ts\":")
            .map(|(i, _)| {
                doc[i + 5..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .expect("digit run")
            })
            .collect();
        assert_eq!(ts.len(), 3);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn exports_are_deterministic() {
        let a = chrome_trace(&recorder_with_spans(), &meta());
        let b = chrome_trace(&recorder_with_spans(), &meta());
        assert_eq!(a, b);
        let c = jsonl(&recorder_with_spans(), &meta());
        let d = jsonl(&recorder_with_spans(), &meta());
        assert_eq!(c, d);
    }

    #[test]
    fn jsonl_carries_every_record_kind() {
        let doc = jsonl(&recorder_with_spans(), &meta());
        assert!(doc.lines().any(|l| l.contains("\"t\":\"meta\"")));
        assert!(doc.lines().any(|l| l.contains("\"t\":\"hist\"")));
        assert!(doc.lines().any(|l| l.contains("\"t\":\"sample\"")));
        assert!(doc.lines().any(|l| l.contains("\"t\":\"span\"")));
        // One stage-hist line per stage, plus 3 chiplets' worth.
        let hists = doc.lines().filter(|l| l.contains("\"t\":\"hist\"")).count();
        assert_eq!(hists, Stage::COUNT + 3 * Stage::COUNT);
    }

    #[test]
    fn hist_json_snapshot_is_byte_stable_at_bucket_boundaries() {
        // Values straddling every interesting boundary of the 3-sub-bit
        // layout: the exact range end (7), the first log bucket (8), an
        // octave edge (15/16), a shared sub-bucket (16 and 17), a power
        // of two (1023/1024), and the final bucket (u64::MAX).
        let values = [0u64, 7, 8, 15, 16, 17, 1023, 1024, u64::MAX];
        let mut h = LatencyHistogram::new();
        for v in values {
            h.record(v);
        }
        let expected = "{\"buckets\":[[0,1],[7,1],[8,1],[15,1],[16,2],[63,1],[64,1],[495,1]],\
                        \"count\":9,\"sum\":18446744073709553725,\"min\":0,\
                        \"max\":18446744073709551615}";
        assert_eq!(hist_json(&h), expected);
        // Insertion order must not leak into the bytes.
        let mut g = LatencyHistogram::new();
        for v in values.iter().rev() {
            g.record(*v);
        }
        assert_eq!(hist_json(&g), expected);
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
