//! Page mapping policies and page migration for MCM-GPUs.
//!
//! The paper's baseline uses **LASP** (locality-aware data and thread-block
//! management, Khairy et al. MICRO'20) and evaluates Barre Chord on top of
//! three alternatives (§VII-H6): **CODA**, plain **round-robin**, and
//! **kernel-wide chunking** (NUMA-aware GPUs, Milic et al. MICRO'17).
//! A policy decides, for every data object, the `interlv_gran` and the
//! chiplet cycle — i.e. it emits the [`barre_core::MappingPlan`] the Barre
//! driver then realizes — and co-locates CTAs with their data.
//!
//! [`migration`] implements the counter-based ACUD page-migration scheme
//! used in §VII-G (threshold 16).

pub mod migration;
pub mod policy;

pub use migration::{Acud, MigrationDecision};
pub use policy::{CtaAssignment, DataHint, PolicyKind};
