//! Counter-based page migration (ACUD, Griffin — Baruah et al. HPCA'20).
//!
//! Each page carries per-chiplet access counters. When a *remote* chiplet's
//! counter reaches the threshold (16 in §VII-G), the page is migrated to
//! that chiplet. The engine here makes the decisions and keeps the
//! counters; the system model charges the copy/shootdown costs and rewrites
//! the PTE (excluding the page from its coalescing group per §VI).

use std::collections::BTreeMap;

use barre_mem::{ChipletId, Vpn};

/// A migration the engine has decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDecision {
    /// Address space of the page.
    pub asid: u16,
    /// The page to move.
    pub vpn: Vpn,
    /// Destination chiplet (the hot accessor).
    pub to: ChipletId,
}

/// The ACUD counter engine.
///
/// # Example
///
/// ```
/// use barre_mapping::Acud;
/// use barre_mem::{ChipletId, Vpn};
///
/// let mut acud = Acud::new(4, 2);
/// // Three remote accesses from GPU1 to a GPU0-homed page…
/// assert!(acud.record(0, Vpn(0x9), ChipletId(1), ChipletId(0)).is_none());
/// // …the fourth reaches the threshold and triggers a migration.
/// let d = acud.record(0, Vpn(0x9), ChipletId(1), ChipletId(0));
/// assert!(d.is_none());
/// let d = acud.record(0, Vpn(0x9), ChipletId(1), ChipletId(0));
/// assert!(d.is_none());
/// let d = acud.record(0, Vpn(0x9), ChipletId(1), ChipletId(0)).unwrap();
/// assert_eq!(d.to, ChipletId(1));
/// ```
#[derive(Debug, Clone)]
pub struct Acud {
    threshold: u32,
    n_chiplets: usize,
    counters: BTreeMap<(u16, Vpn), Vec<u32>>,
    migrations: u64,
    remote_hits_tracked: u64,
}

impl Acud {
    /// Creates an engine with the given remote-access `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or `n_chiplets` is zero.
    pub fn new(threshold: u32, n_chiplets: usize) -> Self {
        assert!(threshold > 0, "threshold must be nonzero");
        assert!(n_chiplets > 0, "need at least one chiplet");
        Self {
            threshold,
            n_chiplets,
            counters: BTreeMap::new(),
            migrations: 0,
            remote_hits_tracked: 0,
        }
    }

    /// The paper's configuration (threshold 16).
    pub fn paper_default(n_chiplets: usize) -> Self {
        Self::new(16, n_chiplets)
    }

    /// Records one access to `(asid, vpn)` homed on `home` issued by
    /// `accessor`. Returns a migration decision when a remote accessor
    /// crosses the threshold; the caller performs the move and must then
    /// call [`migrated`](Self::migrated).
    pub fn record(
        &mut self,
        asid: u16,
        vpn: Vpn,
        accessor: ChipletId,
        home: ChipletId,
    ) -> Option<MigrationDecision> {
        if accessor == home {
            return None;
        }
        self.remote_hits_tracked += 1;
        let counts = self
            .counters
            .entry((asid, vpn))
            .or_insert_with(|| vec![0; self.n_chiplets]);
        let c = &mut counts[accessor.index()];
        *c += 1;
        (*c >= self.threshold).then_some(MigrationDecision {
            asid,
            vpn,
            to: accessor,
        })
    }

    /// Acknowledges that a decided migration completed; resets the page's
    /// counters so ping-pong requires a fresh burst.
    pub fn migrated(&mut self, asid: u16, vpn: Vpn) {
        self.counters.remove(&(asid, vpn));
        self.migrations += 1;
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Remote accesses the engine has counted.
    pub fn remote_accesses(&self) -> u64 {
        self.remote_hits_tracked
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_accesses_never_trigger() {
        let mut a = Acud::new(1, 2);
        for _ in 0..100 {
            assert!(a.record(0, Vpn(1), ChipletId(0), ChipletId(0)).is_none());
        }
        assert_eq!(a.remote_accesses(), 0);
    }

    #[test]
    fn threshold_triggers_migration_to_hot_chiplet() {
        let mut a = Acud::new(16, 4);
        let mut decision = None;
        for _ in 0..16 {
            decision = a.record(0, Vpn(0x10), ChipletId(2), ChipletId(0));
        }
        let d = decision.unwrap();
        assert_eq!(d.to, ChipletId(2));
        assert_eq!(d.vpn, Vpn(0x10));
        a.migrated(0, Vpn(0x10));
        assert_eq!(a.migrations(), 1);
        // Counters reset: next access does not immediately re-trigger.
        assert!(a.record(0, Vpn(0x10), ChipletId(0), ChipletId(2)).is_none());
    }

    #[test]
    fn counters_are_per_accessor() {
        let mut a = Acud::new(3, 4);
        // Two remote chiplets alternate: neither reaches 3 after 4 total.
        assert!(a.record(0, Vpn(5), ChipletId(1), ChipletId(0)).is_none());
        assert!(a.record(0, Vpn(5), ChipletId(2), ChipletId(0)).is_none());
        assert!(a.record(0, Vpn(5), ChipletId(1), ChipletId(0)).is_none());
        assert!(a.record(0, Vpn(5), ChipletId(2), ChipletId(0)).is_none());
        // The third from chiplet 1 triggers.
        let d = a.record(0, Vpn(5), ChipletId(1), ChipletId(0)).unwrap();
        assert_eq!(d.to, ChipletId(1));
    }

    #[test]
    fn pages_are_independent() {
        let mut a = Acud::new(2, 2);
        assert!(a.record(0, Vpn(1), ChipletId(1), ChipletId(0)).is_none());
        assert!(a.record(0, Vpn(2), ChipletId(1), ChipletId(0)).is_none());
        assert!(a.record(0, Vpn(1), ChipletId(1), ChipletId(0)).is_some());
    }

    #[test]
    fn asid_separates_counters() {
        let mut a = Acud::new(2, 2);
        assert!(a.record(1, Vpn(1), ChipletId(1), ChipletId(0)).is_none());
        assert!(a.record(2, Vpn(1), ChipletId(1), ChipletId(0)).is_none());
        assert!(a.record(1, Vpn(1), ChipletId(1), ChipletId(0)).is_some());
    }
}
