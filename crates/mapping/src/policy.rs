//! Page-mapping and CTA-scheduling policies.

use barre_core::MappingPlan;
use barre_mem::virt_alloc::VpnRange;
use barre_mem::ChipletId;

/// The policies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Locality-aware data/CTA co-location (Khairy et al. MICRO'20):
    /// compiler-derived locality extent decides the interleave
    /// granularity per data; CTAs are block-assigned to follow it.
    #[default]
    Lasp,
    /// CODA (Kim et al. TACO'18): linear data as LASP; sparse or
    /// irregularly-accessed data round-robined page by page.
    Coda,
    /// Page-granularity round-robin across chiplets (as used by Idyll's
    /// baseline).
    RoundRobin,
    /// Kernel-wide chunking (Milic et al. MICRO'17): one contiguous chunk
    /// per chiplet for every data, no compiler support.
    Chunking,
}

impl PolicyKind {
    /// All policies, for sweep experiments.
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::Lasp,
            PolicyKind::Coda,
            PolicyKind::RoundRobin,
            PolicyKind::Chunking,
        ]
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lasp => "LASP",
            PolicyKind::Coda => "CODA",
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::Chunking => "chunking",
        }
    }

    /// Builds the mapping plan for one data object.
    ///
    /// `hint` carries what a compiler pass (LASP/CODA) would know about
    /// the access pattern; policies without compiler support ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `n_chiplets` is zero.
    pub fn plan(
        &self,
        asid: u16,
        range: VpnRange,
        hint: DataHint,
        n_chiplets: usize,
    ) -> MappingPlan {
        assert!(n_chiplets > 0, "need at least one chiplet");
        let n = n_chiplets as u64;
        let per_chiplet = range.pages.div_ceil(n).max(1);
        let gran = match self {
            PolicyKind::Lasp => hint
                .locality_gran
                .unwrap_or(per_chiplet)
                .clamp(1, per_chiplet),
            PolicyKind::Coda => {
                if hint.irregular {
                    1
                } else {
                    hint.locality_gran
                        .unwrap_or(per_chiplet)
                        .clamp(1, per_chiplet)
                }
            }
            PolicyKind::RoundRobin => 1,
            PolicyKind::Chunking => per_chiplet,
        };
        let cycle: Vec<ChipletId> = (0..n_chiplets).map(|i| ChipletId(i as u8)).collect();
        MappingPlan::interleaved(range, gran, &cycle).with_asid(asid)
    }

    /// Which chiplet executes CTA `cta` of `n_ctas`.
    pub fn cta_home(&self, cta: u64, n_ctas: u64, n_chiplets: usize) -> CtaAssignment {
        let n = n_chiplets as u64;
        let chiplet = match self {
            // Locality policies block-assign CTAs so CTA i's data region
            // is local.
            PolicyKind::Lasp | PolicyKind::Coda | PolicyKind::Chunking => {
                ((cta * n) / n_ctas.max(1)).min(n - 1)
            }
            PolicyKind::RoundRobin => cta % n,
        };
        CtaAssignment {
            chiplet: ChipletId(chiplet as u8),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compiler-derived knowledge about one data object's access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataHint {
    /// Number of consecutive pages one CTA block touches (the locality
    /// extent LASP derives from row/column access analysis). `None` when
    /// unknown.
    pub locality_gran: Option<u64>,
    /// Whether accesses are sparse/irregular (CODA round-robins these).
    pub irregular: bool,
}

impl DataHint {
    /// A linearly streamed data object with the given locality extent.
    pub fn linear(gran: u64) -> Self {
        Self {
            locality_gran: Some(gran),
            irregular: false,
        }
    }

    /// A sparse/irregularly accessed data object.
    pub fn irregular() -> Self {
        Self {
            locality_gran: None,
            irregular: true,
        }
    }
}

/// Where a CTA is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaAssignment {
    /// Home chiplet of the CTA.
    pub chiplet: ChipletId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use barre_mem::Vpn;

    fn range(pages: u64) -> VpnRange {
        VpnRange {
            start: Vpn(0x100),
            pages,
        }
    }

    #[test]
    fn lasp_uses_compiler_hint() {
        let p = PolicyKind::Lasp.plan(0, range(64), DataHint::linear(4), 4);
        assert_eq!(p.gran, 4);
        // Hint clamped to the per-chiplet share.
        let p = PolicyKind::Lasp.plan(0, range(8), DataHint::linear(100), 4);
        assert_eq!(p.gran, 2);
        // No hint: one chunk per chiplet.
        let p = PolicyKind::Lasp.plan(0, range(64), DataHint::default(), 4);
        assert_eq!(p.gran, 16);
    }

    #[test]
    fn coda_round_robins_irregular_data() {
        let p = PolicyKind::Coda.plan(0, range(64), DataHint::irregular(), 4);
        assert_eq!(p.gran, 1);
        let p = PolicyKind::Coda.plan(0, range(64), DataHint::linear(8), 4);
        assert_eq!(p.gran, 8);
    }

    #[test]
    fn chunking_ignores_hints() {
        let p = PolicyKind::Chunking.plan(0, range(64), DataHint::linear(2), 4);
        assert_eq!(p.gran, 16);
        assert_eq!(p.chunks(), 4);
    }

    #[test]
    fn round_robin_is_page_granular() {
        let p = PolicyKind::RoundRobin.plan(0, range(10), DataHint::linear(4), 4);
        assert_eq!(p.gran, 1);
        // Pages cycle over chiplets.
        assert_eq!(p.chiplet_of(Vpn(0x100)), Some(ChipletId(0)));
        assert_eq!(p.chiplet_of(Vpn(0x101)), Some(ChipletId(1)));
        assert_eq!(p.chiplet_of(Vpn(0x104)), Some(ChipletId(0)));
    }

    #[test]
    fn cta_block_assignment_follows_data() {
        // 16 CTAs over 4 chiplets: CTAs 0-3 on GPU0, ..., 12-15 on GPU3.
        for cta in 0..16u64 {
            let a = PolicyKind::Lasp.cta_home(cta, 16, 4);
            assert_eq!(a.chiplet, ChipletId((cta / 4) as u8));
        }
        // Round-robin interleaves.
        assert_eq!(
            PolicyKind::RoundRobin.cta_home(5, 16, 4).chiplet,
            ChipletId(1)
        );
    }

    #[test]
    fn cta_assignment_handles_remainders() {
        // 10 CTAs, 4 chiplets: assignment stays within range.
        for cta in 0..10u64 {
            let a = PolicyKind::Chunking.cta_home(cta, 10, 4);
            assert!(a.chiplet.0 < 4);
        }
        // Last CTA lands on the last chiplet.
        assert_eq!(
            PolicyKind::Chunking.cta_home(9, 10, 4).chiplet,
            ChipletId(3)
        );
    }

    #[test]
    fn plans_cover_all_pages() {
        for kind in PolicyKind::all() {
            let p = kind.plan(3, range(37), DataHint::linear(5), 4);
            assert_eq!(p.asid, 3);
            for v in p.range.iter() {
                assert!(p.chiplet_of(v).is_some(), "{kind}: unplanned vpn {v}");
            }
        }
    }

    #[test]
    fn tiny_data_single_page() {
        let p = PolicyKind::Lasp.plan(0, range(1), DataHint::default(), 4);
        assert_eq!(p.gran, 1);
        assert_eq!(p.chunks(), 1);
    }
}
