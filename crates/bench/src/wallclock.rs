//! Wall-clock bench harness behind `barre bench`.
//!
//! Runs a pinned smoke sweep (the balanced 9-app subset × 3 translation
//! modes on [`barre_system::smoke_config`]) twice — once serially, once
//! on the worker pool — measuring wall time and events/sec per run, and
//! cross-checks that both passes produced identical [`RunMetrics`]. The
//! rendered report is written to `BENCH_sweep.json`, giving the repo a
//! perf trajectory to compare commits against.
//!
//! Wall time never enters `RunMetrics` (that would break the
//! serial/parallel byte-identity the harness itself asserts); it lives
//! only in this report.

use std::fmt::Write as _;
use std::time::Instant;

use barre_system::{run_spec, smoke_config, RunMetrics, SystemConfig, TranslationMode};
use barre_workloads::AppId;

use crate::{apps_balanced, SweepError, SEED};

/// One `(app, mode)` cell of the sweep.
#[derive(Debug)]
pub struct BenchRun {
    /// Application name (Table I spelling).
    pub app: &'static str,
    /// Translation-mode label.
    pub mode: &'static str,
    /// Simulated cycles (deterministic).
    pub total_cycles: u64,
    /// Events executed by the event loop (deterministic).
    pub events: u64,
    /// Wall time of this run in the serial pass, milliseconds.
    pub wall_ms_serial: f64,
    /// Wall time of this run in the parallel pass, milliseconds.
    pub wall_ms_parallel: f64,
    /// Simulator throughput: events / serial wall seconds (the serial
    /// pass is uncontended, so it is the cleaner per-run number).
    pub events_per_sec: f64,
}

/// The full report `barre bench` renders to `BENCH_sweep.json`.
#[derive(Debug)]
pub struct BenchReport {
    /// Worker threads used for the parallel pass.
    pub jobs: usize,
    /// Whether the quick (3-app) subset ran instead of the full 9.
    pub quick: bool,
    /// End-to-end wall time of the serial pass, milliseconds.
    pub serial_wall_ms: f64,
    /// End-to-end wall time of the parallel pass, milliseconds.
    pub parallel_wall_ms: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    pub speedup: f64,
    /// `app/mode` labels whose serial and parallel metrics differed.
    /// Always empty unless determinism is broken.
    pub divergent: Vec<String>,
    /// Per-run measurements, sweep order.
    pub runs: Vec<BenchRun>,
}

/// The three pinned translation modes the bench sweeps.
pub fn bench_modes() -> Vec<(&'static str, SystemConfig)> {
    let base = smoke_config();
    vec![
        ("baseline", base.clone()),
        ("barre", base.clone().with_mode(TranslationMode::Barre)),
        (
            "fbarre",
            base.with_mode(TranslationMode::FBarre(Default::default())),
        ),
    ]
}

/// The pinned app set: the balanced 9, or one app per MPKI class for
/// `--quick`.
pub fn bench_apps(quick: bool) -> Vec<AppId> {
    if quick {
        vec![AppId::Gemv, AppId::Jac2d, AppId::Gups]
    } else {
        apps_balanced()
    }
}

fn timed_pass(
    cases: &[(AppId, &'static str, SystemConfig)],
    threads: usize,
) -> Result<(f64, Vec<(f64, RunMetrics)>), SweepError> {
    let jobs: Vec<_> = cases
        .iter()
        .map(|(app, _, cfg)| {
            let spec = app.spec();
            let cfg = cfg.clone();
            move || {
                let t0 = Instant::now();
                let m = run_spec(spec, &cfg, SEED);
                (t0.elapsed().as_secs_f64() * 1e3, m)
            }
        })
        .collect();
    let t0 = Instant::now();
    let out = barre_sim::pool::run_ordered(jobs, threads).map_err(|e| SweepError {
        label: "<worker pool>".into(),
        error: e.into(),
    })?;
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut runs = Vec::with_capacity(out.len());
    for ((app, mode, _), (ms, res)) in cases.iter().zip(out) {
        let m = res.map_err(|error| SweepError {
            label: format!("{}/{mode}", app.name()),
            error,
        })?;
        runs.push((ms, m));
    }
    Ok((total_ms, runs))
}

/// Runs the pinned sweep serially and then on `jobs` workers, returning
/// the timed, cross-checked report.
///
/// # Errors
///
/// [`SweepError`] when any simulation fails or a pool worker dies.
pub fn run_bench(quick: bool, jobs: usize) -> Result<BenchReport, SweepError> {
    let modes = bench_modes();
    let cases: Vec<(AppId, &'static str, SystemConfig)> = bench_apps(quick)
        .into_iter()
        .flat_map(|app| {
            modes
                .iter()
                .map(move |(label, cfg)| (app, *label, cfg.clone()))
        })
        .collect();
    let (serial_wall_ms, serial) = timed_pass(&cases, 1)?;
    let (parallel_wall_ms, parallel) = timed_pass(&cases, jobs)?;
    let mut divergent = Vec::new();
    let mut runs = Vec::with_capacity(cases.len());
    for (((app, mode, _), (s_ms, s_m)), (p_ms, p_m)) in cases.iter().zip(serial).zip(parallel) {
        if s_m != p_m {
            divergent.push(format!("{}/{mode}", app.name()));
        }
        let events_per_sec = if s_ms > 0.0 {
            s_m.events_processed as f64 / (s_ms / 1e3)
        } else {
            0.0
        };
        runs.push(BenchRun {
            app: app.name(),
            mode,
            total_cycles: s_m.total_cycles,
            events: s_m.events_processed,
            wall_ms_serial: s_ms,
            wall_ms_parallel: p_ms,
            events_per_sec,
        });
    }
    let speedup = if parallel_wall_ms > 0.0 {
        serial_wall_ms / parallel_wall_ms
    } else {
        0.0
    };
    Ok(BenchReport {
        jobs,
        quick,
        serial_wall_ms,
        parallel_wall_ms,
        speedup,
        divergent,
        runs,
    })
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl BenchReport {
    /// Renders the report as the `BENCH_sweep.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"barre-bench-sweep/1\",\n");
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!(
            "  \"serial_wall_ms\": {:.3},\n",
            self.serial_wall_ms
        ));
        s.push_str(&format!(
            "  \"parallel_wall_ms\": {:.3},\n",
            self.parallel_wall_ms
        ));
        s.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup));
        s.push_str("  \"divergent\": [");
        for (i, d) in self.divergent.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(d));
        }
        s.push_str("],\n");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"app\": {}, \"mode\": {}, \"total_cycles\": {}, \"events\": {}, \
                 \"wall_ms_serial\": {:.3}, \"wall_ms_parallel\": {:.3}, \
                 \"events_per_sec\": {:.0}}}{}\n",
                json_str(r.app),
                json_str(r.mode),
                r.total_cycles,
                r.events,
                r.wall_ms_serial,
                r.wall_ms_parallel,
                r.events_per_sec,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Cells whose serial throughput is more than `ratio` times slower
    /// than the same app's baseline run — the `--gate` perf contract.
    /// A cell that processed zero events/sec (a degenerate run) always
    /// violates; a missing baseline cell never does (nothing to gate
    /// against).
    pub fn gate_violations(&self, ratio: f64) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.runs {
            if r.mode == "baseline" {
                continue;
            }
            let Some(base) = self
                .runs
                .iter()
                .find(|b| b.mode == "baseline" && b.app == r.app)
            else {
                continue;
            };
            if base.events_per_sec <= 0.0 {
                continue;
            }
            let slowdown = if r.events_per_sec > 0.0 {
                base.events_per_sec / r.events_per_sec
            } else {
                f64::INFINITY
            };
            if slowdown > ratio {
                out.push(format!(
                    "{}/{}: {slowdown:.2}x slower than baseline ({:.0} vs {:.0} events/sec, \
                     gate {ratio:.1}x)",
                    r.app, r.mode, r.events_per_sec, base.events_per_sec,
                ));
            }
        }
        out
    }

    /// Human-readable summary lines for the terminal.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "bench: {} runs, serial {:.0} ms, parallel {:.0} ms at {} jobs ({:.2}x)\n",
            self.runs.len(),
            self.serial_wall_ms,
            self.parallel_wall_ms,
            self.jobs,
            self.speedup,
        ));
        if self.divergent.is_empty() {
            s.push_str("serial/parallel metrics: identical\n");
        } else {
            s.push_str(&format!(
                "DIVERGENCE in {} run(s): {}\n",
                self.divergent.len(),
                self.divergent.join(", "),
            ));
        }
        s
    }
}

/// Folds per-shard `BENCH_sweep.json` fragments into one merged report
/// (`barre-bench-merged/1`): the union of `(app, mode)` rows in
/// first-seen order. The deterministic fields (`total_cycles`, `events`)
/// must agree wherever two shards cover the same cell — a mismatch means
/// the shards came from diverging binaries or configurations and is
/// refused. Wall-clock fields are per-shard measurements and are carried
/// from the first shard that has the row; `events_per_sec` is recomputed
/// from the carried `events` and `wall_ms_serial` (the same formula
/// [`run_bench`] uses), so a merged row is always internally consistent
/// instead of echoing whatever throughput the shard claimed.
///
/// # Errors
///
/// A description of the first unparsable shard or conflicting cell.
pub fn merge_reports(docs: &[String]) -> Result<String, String> {
    use barre_system::journal::Json;
    use std::collections::BTreeMap;

    fn num_text(v: Option<&Json>) -> String {
        match v {
            Some(Json::Num(t)) => t.clone(),
            _ => "0".to_string(),
        }
    }

    let mut order: Vec<String> = Vec::new();
    let mut dets: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut rows: BTreeMap<String, String> = BTreeMap::new();
    for (si, doc) in docs.iter().enumerate() {
        let v = Json::parse(doc).map_err(|e| format!("bench shard {si}: {e}"))?;
        let runs = v
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("bench shard {si}: no runs array"))?;
        for r in runs {
            let app = r
                .get("app")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("bench shard {si}: run without app"))?;
            let mode = r
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("bench shard {si}: run without mode"))?;
            let cycles = r
                .get("total_cycles")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bench shard {si}: {app}/{mode} without total_cycles"))?;
            let events = r
                .get("events")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bench shard {si}: {app}/{mode} without events"))?;
            let key = format!("{app}\u{1f}{mode}");
            if let Some(&(c0, e0)) = dets.get(&key) {
                if (c0, e0) != (cycles, events) {
                    return Err(format!(
                        "bench merge conflict for {app}/{mode}: \
                         total_cycles/events {c0}/{e0} vs {cycles}/{events}"
                    ));
                }
                continue;
            }
            dets.insert(key.clone(), (cycles, events));
            let wall_ms_serial = num_text(r.get("wall_ms_serial"));
            let eps = match wall_ms_serial.parse::<f64>() {
                Ok(ms) if ms > 0.0 => events as f64 / (ms / 1e3),
                _ => 0.0,
            };
            rows.insert(
                key.clone(),
                format!(
                    "    {{\"app\": {}, \"mode\": {}, \"total_cycles\": {cycles}, \
                     \"events\": {events}, \"wall_ms_serial\": {wall_ms_serial}, \
                     \"wall_ms_parallel\": {}, \"events_per_sec\": {eps:.0}}}",
                    json_str(app),
                    json_str(mode),
                    num_text(r.get("wall_ms_parallel")),
                ),
            );
            order.push(key);
        }
    }
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str("  \"schema\": \"barre-bench-merged/1\",\n");
    s.push_str(&format!("  \"shards\": {},\n", docs.len()));
    s.push_str("  \"runs\": [\n");
    for (i, key) in order.iter().enumerate() {
        if let Some(row) = rows.get(key) {
            s.push_str(row);
            s.push_str(if i + 1 < order.len() { ",\n" } else { "\n" });
        }
    }
    s.push_str("  ]\n}\n");
    Ok(s)
}

/// One `(app, mode)` row of a [`diff_reports`] comparison.
#[derive(Debug)]
pub struct BenchDiffRow {
    /// `app/mode` label.
    pub label: String,
    /// Serial events/sec in the old report.
    pub old_eps: f64,
    /// Serial events/sec in the new report.
    pub new_eps: f64,
    /// `old_eps / new_eps` — above 1.0 means the new run is slower.
    pub slowdown: f64,
    /// Whether the deterministic columns (`total_cycles`, `events`)
    /// changed between the reports — a result change, not just noise.
    pub results_changed: bool,
}

/// The outcome of comparing two `BENCH_sweep.json` documents.
#[derive(Debug)]
pub struct BenchDiff {
    /// Rows present in both reports, old-report order.
    pub rows: Vec<BenchDiffRow>,
    /// `app/mode` labels present in only one of the reports.
    pub missing: Vec<String>,
    /// The threshold rows were judged against.
    pub threshold: f64,
}

impl BenchDiff {
    /// Rows slower than the threshold (the regressions the CI step
    /// fails on).
    pub fn regressions(&self) -> Vec<&BenchDiffRow> {
        self.rows
            .iter()
            .filter(|r| r.slowdown > self.threshold)
            .collect()
    }

    /// Renders the comparison as a terminal table plus verdict line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<22} {:>12} {:>12} {:>9}",
            "app/mode", "old ev/s", "new ev/s", "ratio"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<22} {:>12.0} {:>12.0} {:>8.2}x{}{}",
                r.label,
                r.old_eps,
                r.new_eps,
                r.slowdown,
                if r.slowdown > self.threshold {
                    "  REGRESSED"
                } else {
                    ""
                },
                if r.results_changed {
                    "  (results changed)"
                } else {
                    ""
                },
            );
        }
        for m in &self.missing {
            let _ = writeln!(s, "{m:<22} only in one report");
        }
        let regs = self.regressions();
        if regs.is_empty() {
            let _ = writeln!(
                s,
                "no regressions beyond {:.2}x across {} comparable cell(s)",
                self.threshold,
                self.rows.len()
            );
        } else {
            let _ = writeln!(
                s,
                "{} regression(s) beyond {:.2}x",
                regs.len(),
                self.threshold
            );
        }
        s
    }
}

/// Compares two bench-sweep JSON documents (`barre-bench-sweep/1` or
/// `barre-bench-merged/1`) cell by cell: `old_eps / new_eps` per
/// `(app, mode)` row, regression when the ratio exceeds `threshold`.
/// Wall-clock noise is expected — pick thresholds accordingly (the CI
/// step uses a generous one); deterministic drift is flagged separately
/// via [`BenchDiffRow::results_changed`].
///
/// # Errors
///
/// A description of the first unparsable document.
pub fn diff_reports(old: &str, new: &str, threshold: f64) -> Result<BenchDiff, String> {
    use barre_system::journal::Json;

    fn rows_of(doc: &str, which: &str) -> Result<Vec<(String, u64, u64, f64)>, String> {
        let v = Json::parse(doc).map_err(|e| format!("{which} report: {e}"))?;
        let runs = v
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{which} report: no runs array"))?;
        let mut out = Vec::with_capacity(runs.len());
        for r in runs {
            let app = r
                .get("app")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{which} report: run without app"))?;
            let mode = r
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{which} report: run without mode"))?;
            let cycles = r.get("total_cycles").and_then(Json::as_u64).unwrap_or(0);
            let events = r.get("events").and_then(Json::as_u64).unwrap_or(0);
            let eps = r
                .get("events_per_sec")
                .and_then(Json::as_u64)
                .map_or(0.0, |n| n as f64);
            out.push((format!("{app}/{mode}"), cycles, events, eps));
        }
        Ok(out)
    }

    let old_rows = rows_of(old, "old")?;
    let new_rows = rows_of(new, "new")?;
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (label, oc, oe, oeps) in &old_rows {
        match new_rows.iter().find(|(l, ..)| l == label) {
            Some((_, nc, ne, neps)) => rows.push(BenchDiffRow {
                label: label.clone(),
                old_eps: *oeps,
                new_eps: *neps,
                slowdown: if *neps > 0.0 {
                    oeps / neps
                } else if *oeps > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                },
                results_changed: (oc, oe) != (nc, ne),
            }),
            None => missing.push(label.clone()),
        }
    }
    for (label, ..) in &new_rows {
        if !old_rows.iter().any(|(l, ..)| l == label) {
            missing.push(label.clone());
        }
    }
    Ok(BenchDiff {
        rows,
        missing,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(rows: &str) -> String {
        format!("{{\"schema\": \"barre-bench-sweep/1\", \"runs\": [{rows}]}}")
    }

    #[test]
    fn merge_reports_unions_and_detects_conflicts() {
        let a = shard(
            "{\"app\": \"gemv\", \"mode\": \"barre\", \"total_cycles\": 100, \"events\": 10, \
             \"wall_ms_serial\": 1.5, \"wall_ms_parallel\": 0.9, \"events_per_sec\": 6667}",
        );
        let b = shard(
            "{\"app\": \"gups\", \"mode\": \"barre\", \"total_cycles\": 200, \"events\": 20, \
             \"wall_ms_serial\": 2.5, \"wall_ms_parallel\": 1.9, \"events_per_sec\": 8000}",
        );
        let merged = merge_reports(&[a.clone(), b.clone()]).expect("merge");
        assert!(merged.contains("\"schema\": \"barre-bench-merged/1\""));
        assert!(merged.contains("\"shards\": 2"));
        assert!(merged.contains("\"app\": \"gemv\""));
        assert!(merged.contains("\"app\": \"gups\""));
        // Wall times survive verbatim from the owning shard.
        assert!(merged.contains("\"wall_ms_serial\": 1.5"));
        // Overlapping cells with equal deterministic fields are fine
        // (wall times may differ — they are measurements, not results).
        let a2 = shard(
            "{\"app\": \"gemv\", \"mode\": \"barre\", \"total_cycles\": 100, \"events\": 10, \
             \"wall_ms_serial\": 9.9, \"wall_ms_parallel\": 9.9, \"events_per_sec\": 1}",
        );
        assert!(merge_reports(&[a.clone(), a2]).is_ok());
        // Diverging cycles are a conflict.
        let bad = shard(
            "{\"app\": \"gemv\", \"mode\": \"barre\", \"total_cycles\": 101, \"events\": 10, \
             \"wall_ms_serial\": 1.5, \"wall_ms_parallel\": 0.9, \"events_per_sec\": 6667}",
        );
        let err = merge_reports(&[a, bad]).expect_err("conflict");
        assert!(err.contains("conflict"), "{err}");
        // Garbage shards are rejected with the shard index.
        assert!(merge_reports(&["not json".to_string()]).is_err());
    }

    #[test]
    fn merge_recomputes_events_per_sec() {
        // A shard claiming a bogus throughput: the merged row derives
        // events/sec from the carried events and wall_ms_serial rather
        // than echoing the claim, so the row stays self-consistent.
        let a = shard(
            "{\"app\": \"gemv\", \"mode\": \"barre\", \"total_cycles\": 100, \"events\": 10, \
             \"wall_ms_serial\": 2.0, \"wall_ms_parallel\": 0.9, \"events_per_sec\": 123456}",
        );
        let merged = merge_reports(&[a]).expect("merge");
        assert!(merged.contains("\"events_per_sec\": 5000"), "{merged}");
        assert!(!merged.contains("123456"), "{merged}");
        // Zero wall time degrades to 0 instead of dividing by zero.
        let z = shard(
            "{\"app\": \"gups\", \"mode\": \"barre\", \"total_cycles\": 1, \"events\": 5, \
             \"wall_ms_serial\": 0.0, \"wall_ms_parallel\": 0.0, \"events_per_sec\": 99}",
        );
        let merged = merge_reports(&[z]).expect("merge");
        assert!(merged.contains("\"events_per_sec\": 0"), "{merged}");
    }

    #[test]
    fn quick_bench_is_consistent_and_renders() {
        let r = run_bench(true, 2).expect("bench run");
        assert_eq!(r.runs.len(), 9); // 3 apps x 3 modes
        assert!(r.divergent.is_empty(), "divergent: {:?}", r.divergent);
        assert!(r.runs.iter().all(|x| x.events > 0 && x.total_cycles > 0));
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"barre-bench-sweep/1\""));
        assert!(json.contains("\"divergent\": []"));
        assert!(r.summary().contains("identical"));
    }

    fn run(app: &'static str, mode: &'static str, eps: f64) -> BenchRun {
        BenchRun {
            app,
            mode,
            total_cycles: 1,
            events: 1,
            wall_ms_serial: 1.0,
            wall_ms_parallel: 1.0,
            events_per_sec: eps,
        }
    }

    #[test]
    fn gate_flags_cells_beyond_ratio() {
        let report = BenchReport {
            jobs: 1,
            quick: true,
            serial_wall_ms: 1.0,
            parallel_wall_ms: 1.0,
            speedup: 1.0,
            divergent: Vec::new(),
            runs: vec![
                run("gups", "baseline", 6_000_000.0),
                run("gups", "barre", 5_000_000.0),  // 1.2x: fine
                run("gups", "fbarre", 1_000_000.0), // 6.0x: violation
                run("gemv", "baseline", 2_000_000.0),
                run("gemv", "fbarre", 500_000.0), // 4.0x: fine at 5.0
                run("spmv", "fbarre", 1.0),       // no baseline cell: skipped
            ],
        };
        let v = report.gate_violations(5.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("gups/fbarre: 6.00x"), "{}", v[0]);
        // Tighter gate catches more; looser gate passes everything.
        assert_eq!(report.gate_violations(1.1).len(), 3);
        assert!(report.gate_violations(10.0).is_empty());
        // A dead cell (0 events/sec) is always a violation.
        let mut dead = report;
        dead.runs.push(run("gups", "fbarre1", 0.0));
        let v = dead.gate_violations(5.0);
        assert!(v.iter().any(|s| s.contains("gups/fbarre1: inf")), "{v:?}");
    }

    #[test]
    fn diff_reports_ranks_and_flags_regressions() {
        let old = shard(
            "{\"app\": \"gups\", \"mode\": \"fbarre\", \"total_cycles\": 10, \"events\": 4, \
             \"wall_ms_serial\": 1.0, \"wall_ms_parallel\": 1.0, \"events_per_sec\": 4000},\n\
             {\"app\": \"gemv\", \"mode\": \"barre\", \"total_cycles\": 7, \"events\": 3, \
             \"wall_ms_serial\": 1.0, \"wall_ms_parallel\": 1.0, \"events_per_sec\": 3000}",
        );
        let new = shard(
            "{\"app\": \"gups\", \"mode\": \"fbarre\", \"total_cycles\": 10, \"events\": 4, \
             \"wall_ms_serial\": 4.0, \"wall_ms_parallel\": 4.0, \"events_per_sec\": 1000},\n\
             {\"app\": \"spmv\", \"mode\": \"barre\", \"total_cycles\": 9, \"events\": 9, \
             \"wall_ms_serial\": 1.0, \"wall_ms_parallel\": 1.0, \"events_per_sec\": 9000}",
        );
        let d = diff_reports(&old, &new, 1.5).expect("diff");
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].label, "gups/fbarre");
        assert!((d.rows[0].slowdown - 4.0).abs() < 1e-9);
        assert!(!d.rows[0].results_changed);
        assert_eq!(d.regressions().len(), 1);
        // Cells present on only one side are reported, not compared.
        assert_eq!(d.missing, vec!["gemv/barre", "spmv/barre"]);
        let rendered = d.render();
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(
            rendered.contains("1 regression(s) beyond 1.50x"),
            "{rendered}"
        );
        // Same docs: no regressions, and the verdict line says so.
        let same = diff_reports(&old, &old, 1.5).expect("diff");
        assert!(same.regressions().is_empty());
        assert!(same.render().contains("no regressions"));
        // Deterministic drift is flagged even when throughput is fine.
        let drift = shard(
            "{\"app\": \"gups\", \"mode\": \"fbarre\", \"total_cycles\": 11, \"events\": 4, \
             \"wall_ms_serial\": 1.0, \"wall_ms_parallel\": 1.0, \"events_per_sec\": 4000}",
        );
        let d = diff_reports(&old, &drift, 1.5).expect("diff");
        assert!(d.rows[0].results_changed);
        assert!(d.render().contains("results changed"));
        // Garbage inputs name the side that failed to parse.
        assert!(diff_reports("nope", &new, 1.5).unwrap_err().contains("old"));
        assert!(diff_reports(&old, "nope", 1.5).unwrap_err().contains("new"));
    }

    #[test]
    fn mode_labels_are_pinned() {
        let labels: Vec<_> = bench_modes().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["baseline", "barre", "fbarre"]);
        assert_eq!(bench_apps(true).len(), 3);
        assert_eq!(bench_apps(false).len(), 9);
    }
}
