//! Shared experiment-harness utilities.
//!
//! Every paper table/figure has a bench target under `benches/` (all
//! `harness = false`); each builds its configurations, runs the app sweep
//! through [`sweep`], and prints the same rows/series the paper reports.
//! `EXPERIMENTS.md` records the measured outputs next to the paper's
//! numbers.

use barre_system::{geomean, run_batch, RunMetrics, SimError, SystemConfig};
use barre_workloads::{AppId, WorkloadSpec};

pub mod wallclock;

/// All 19 applications, Table I order.
pub fn apps_all() -> Vec<AppId> {
    AppId::all().to_vec()
}

/// The balanced low/mid/high subset the paper uses for its heaviest
/// sweeps (§VII-H4 "a balanced number of workloads from each TLB MPKI
/// class").
pub fn apps_balanced() -> Vec<AppId> {
    vec![
        AppId::Gemv,
        AppId::Fft,
        AppId::Pr,
        AppId::Jac2d,
        AppId::Lu,
        AppId::St2d,
        AppId::Matr,
        AppId::Gups,
        AppId::Spmv,
    ]
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, what: &str, paper: &str) {
    println!("================================================================");
    println!("{figure}: {what}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Runs `apps × cfgs`, returning `results[app][cfg]`.
pub fn sweep(apps: &[AppId], cfgs: &[(String, SystemConfig)], seed: u64) -> Vec<Vec<RunMetrics>> {
    sweep_specs_or_exit(
        &apps.iter().map(|a| a.spec()).collect::<Vec<_>>(),
        cfgs,
        seed,
    )
}

/// A sweep failure: which configuration died, and the underlying error.
#[derive(Debug)]
pub struct SweepError {
    /// Label of the offending configuration.
    pub label: String,
    /// What went wrong.
    pub error: SimError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config {}: {}", self.label, self.error)
    }
}

impl std::error::Error for SweepError {}

/// Runs `specs × cfgs` on the run-level worker pool, returning
/// `results[spec][cfg]`.
///
/// `jobs` picks the worker count (`None` → `BARRE_JOBS` env var →
/// available parallelism); the results are identical at any count
/// because each simulation is single-threaded and the pool returns them
/// in input order.
///
/// # Errors
///
/// [`SweepError`] naming the first configuration (in `specs × cfgs`
/// order) whose run failed, or the pool failure itself.
pub fn try_sweep_specs(
    specs: &[WorkloadSpec],
    cfgs: &[(String, SystemConfig)],
    seed: u64,
    jobs: Option<usize>,
) -> Result<Vec<Vec<RunMetrics>>, SweepError> {
    let batch: Vec<barre_system::BatchJob> = specs
        .iter()
        .flat_map(|spec| cfgs.iter().map(move |(_, cfg)| (*spec, cfg.clone(), seed)))
        .collect();
    let threads = barre_sim::pool::resolve_jobs(jobs);
    let flat = run_batch(batch, threads).map_err(|error| SweepError {
        label: "<worker pool>".into(),
        error,
    })?;
    let mut rows = Vec::with_capacity(specs.len());
    let mut it = flat.into_iter().enumerate();
    for _ in 0..specs.len() {
        let mut row = Vec::with_capacity(cfgs.len());
        for _ in 0..cfgs.len() {
            // The batch is exactly specs.len()*cfgs.len() long; a short
            // pool result is already a pool error above.
            let Some((i, res)) = it.next() else { break };
            row.push(res.map_err(|error| SweepError {
                label: cfgs[i % cfgs.len()].0.clone(),
                error,
            })?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Runs `specs × cfgs`, exiting the process with a labeled error message
/// on failure — what the fig-bench binaries want: a `SimError` in a
/// hand-checked configuration is fatal, but it should die as a
/// diagnosable one-line error, not a panic with a backtrace.
pub fn sweep_specs_or_exit(
    specs: &[WorkloadSpec],
    cfgs: &[(String, SystemConfig)],
    seed: u64,
) -> Vec<Vec<RunMetrics>> {
    try_sweep_specs(specs, cfgs, seed, None).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Prints a speedup table: one row per app, one column per non-baseline
/// config (speedup over column 0), plus a geometric-mean footer row.
pub fn print_speedups(
    apps: &[AppId],
    cfgs: &[(String, SystemConfig)],
    results: &[Vec<RunMetrics>],
) {
    print!("{:<8}", "app");
    for (label, _) in &cfgs[1..] {
        print!("{label:>18}");
    }
    println!();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len() - 1];
    for (a, row) in apps.iter().zip(results) {
        print!("{:<8}", a.name());
        for (i, m) in row[1..].iter().enumerate() {
            let sp = barre_system::speedup(&row[0], m);
            columns[i].push(sp);
            print!("{sp:>17.3}x");
        }
        println!();
    }
    print!("{:<8}", "geomean");
    for col in &columns {
        print!("{:>17.3}x", geomean(col.iter().copied()));
    }
    println!();
}

/// Convenience: `(label, cfg)` pair.
pub fn cfg(label: &str, cfg: SystemConfig) -> (String, SystemConfig) {
    (label.to_string(), cfg)
}

/// Standard experiment seed (fixed for reproducibility).
pub const SEED: u64 = 0x15CA_2024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_subset_covers_all_classes() {
        use barre_workloads::Category;
        let apps = apps_balanced();
        for c in [Category::Low, Category::Mid, Category::High] {
            assert_eq!(
                apps.iter().filter(|a| a.category() == c).count(),
                3,
                "class {c} misrepresented"
            );
        }
    }

    #[test]
    fn sweep_shape() {
        let cfgs = vec![cfg("base", barre_system::smoke_config())];
        let r = sweep(&[AppId::Gemv], &cfgs, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].len(), 1);
        assert!(r[0][0].total_cycles > 0);
    }

    #[test]
    fn try_sweep_propagates_errors_with_label() {
        let mut bad = barre_system::smoke_config();
        bad.cu_slots = 0;
        let cfgs = vec![cfg("ok", barre_system::smoke_config()), cfg("broken", bad)];
        let err = try_sweep_specs(&[AppId::Gemv.spec()], &cfgs, 1, Some(2))
            .expect_err("bad config must surface");
        assert_eq!(err.label, "broken");
        assert!(err.to_string().contains("config broken:"));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let specs = [AppId::Gemv.spec(), AppId::Gups.spec()];
        let cfgs = vec![
            cfg("base", barre_system::smoke_config()),
            cfg(
                "barre",
                barre_system::smoke_config().with_mode(barre_system::TranslationMode::Barre),
            ),
        ];
        let serial = try_sweep_specs(&specs, &cfgs, SEED, Some(1)).expect("serial");
        let parallel = try_sweep_specs(&specs, &cfgs, SEED, Some(4)).expect("parallel");
        assert_eq!(serial, parallel);
    }
}
