//! Shared experiment-harness utilities.
//!
//! Every paper table/figure has a bench target under `benches/` (all
//! `harness = false`); each builds its configurations, runs the app sweep
//! through [`sweep`], and prints the same rows/series the paper reports.
//! `EXPERIMENTS.md` records the measured outputs next to the paper's
//! numbers.

use barre_system::{geomean, run_spec, RunMetrics, SystemConfig};
use barre_workloads::{AppId, WorkloadSpec};

/// All 19 applications, Table I order.
pub fn apps_all() -> Vec<AppId> {
    AppId::all().to_vec()
}

/// The balanced low/mid/high subset the paper uses for its heaviest
/// sweeps (§VII-H4 "a balanced number of workloads from each TLB MPKI
/// class").
pub fn apps_balanced() -> Vec<AppId> {
    vec![
        AppId::Gemv,
        AppId::Fft,
        AppId::Pr,
        AppId::Jac2d,
        AppId::Lu,
        AppId::St2d,
        AppId::Matr,
        AppId::Gups,
        AppId::Spmv,
    ]
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, what: &str, paper: &str) {
    println!("================================================================");
    println!("{figure}: {what}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Runs `apps × cfgs`, returning `results[app][cfg]`.
pub fn sweep(apps: &[AppId], cfgs: &[(String, SystemConfig)], seed: u64) -> Vec<Vec<RunMetrics>> {
    sweep_specs(
        &apps.iter().map(|a| a.spec()).collect::<Vec<_>>(),
        cfgs,
        seed,
    )
}

/// Runs `specs × cfgs`, returning `results[spec][cfg]`.
///
/// # Panics
///
/// The experiment harness runs hand-checked configurations, so any
/// [`barre_system::SimError`] here is a bug worth aborting on.
pub fn sweep_specs(
    specs: &[WorkloadSpec],
    cfgs: &[(String, SystemConfig)],
    seed: u64,
) -> Vec<Vec<RunMetrics>> {
    specs
        .iter()
        .map(|spec| {
            cfgs.iter()
                .map(|(label, cfg)| {
                    run_spec(*spec, cfg, seed).unwrap_or_else(|e| panic!("config {label}: {e}"))
                })
                .collect()
        })
        .collect()
}

/// Prints a speedup table: one row per app, one column per non-baseline
/// config (speedup over column 0), plus a geometric-mean footer row.
pub fn print_speedups(
    apps: &[AppId],
    cfgs: &[(String, SystemConfig)],
    results: &[Vec<RunMetrics>],
) {
    print!("{:<8}", "app");
    for (label, _) in &cfgs[1..] {
        print!("{label:>18}");
    }
    println!();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len() - 1];
    for (a, row) in apps.iter().zip(results) {
        print!("{:<8}", a.name());
        for (i, m) in row[1..].iter().enumerate() {
            let sp = barre_system::speedup(&row[0], m);
            columns[i].push(sp);
            print!("{sp:>17.3}x");
        }
        println!();
    }
    print!("{:<8}", "geomean");
    for col in &columns {
        print!("{:>17.3}x", geomean(col.iter().copied()));
    }
    println!();
}

/// Convenience: `(label, cfg)` pair.
pub fn cfg(label: &str, cfg: SystemConfig) -> (String, SystemConfig) {
    (label.to_string(), cfg)
}

/// Standard experiment seed (fixed for reproducibility).
pub const SEED: u64 = 0x15CA_2024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_subset_covers_all_classes() {
        use barre_workloads::Category;
        let apps = apps_balanced();
        for c in [Category::Low, Category::Mid, Category::High] {
            assert_eq!(
                apps.iter().filter(|a| a.category() == c).count(),
                3,
                "class {c} misrepresented"
            );
        }
    }

    #[test]
    fn sweep_shape() {
        let cfgs = vec![cfg("base", barre_system::smoke_config())];
        let r = sweep(&[AppId::Gemv], &cfgs, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].len(), 1);
        assert!(r[0][0].total_cycles > 0);
    }
}
