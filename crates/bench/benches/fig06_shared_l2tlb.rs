//! Fig 6 — speedup of an ideal MCM-wide shared L2 TLB over private TLBs.
//!
//! Paper shape: only ~6% average speedup, with fewer than half the
//! applications improving — under an advanced page-mapping policy, exact
//! TLB sharing has little left to share, so a different approach (Barre)
//! is needed.

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::{SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 6",
        "ideal shared L2 TLB (4x entries, no added latency) vs private",
        "Fig 6 (§III-D)",
    );
    let base = SystemConfig::scaled();
    let cfgs = vec![
        cfg("private", base.clone()),
        cfg(
            "shared-ideal",
            base.clone().with_mode(TranslationMode::SharedL2Ideal),
        ),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
}
