//! Fig 26 — Barre Chord under other page-mapping policies.
//!
//! Paper shape: speedups of 1.25×/1.48×/1.62× with round-robin,
//! kernel-wide chunking and CODA — Barre Chord works wherever data is
//! distributed across chiplets, with less gain under locality-oblivious
//! mapping (remote accesses dominate).

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_mapping::PolicyKind;
use barre_system::{geomean, speedup, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 26",
        "F-Barre speedup vs same-policy baseline, per mapping policy",
        "Fig 26 (§VII-H6)",
    );
    let apps = apps_all();
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Chunking,
        PolicyKind::Coda,
    ];
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "app", "round-robin", "chunking", "CODA"
    );
    let mut rows = vec![String::new(); apps.len()];
    let mut geo = Vec::new();
    for policy in policies {
        let base = SystemConfig::scaled().with_policy(policy);
        let fb = base
            .clone()
            .with_mode(TranslationMode::FBarre(Default::default()));
        let cfgs = vec![cfg("b", base), cfg("f", fb)];
        let results = sweep(&apps, &cfgs, SEED);
        let sps: Vec<f64> = results.iter().map(|r| speedup(&r[0], &r[1])).collect();
        for (i, sp) in sps.iter().enumerate() {
            rows[i].push_str(&format!(" {sp:>13.3}"));
        }
        geo.push(geomean(sps));
    }
    for (a, r) in apps.iter().zip(&rows) {
        println!("{:<8}{r}", a.name());
    }
    println!(
        "{:<8} {:>13.3} {:>13.3} {:>13.3}",
        "geomean", geo[0], geo[1], geo[2]
    );
}
