//! Fig 17 — LCF/RCF sharer-prediction quality and filter-size sweep.
//!
//! (a) remote hit rate (peer probes that returned a translation) and
//!     local hit rate (LCF true positives). Paper: ~75.3% remote /
//!     ~98.4% local; the remote side is lower because best-effort filter
//!     updates can be dropped.
//! (b) speedup with 512- and 1024-row filters over 256-row filters.
//!     Paper: +3% and +6%.

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, FBarreConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 17",
        "(a) filter hit rates; (b) sensitivity to filter rows",
        "Fig 17a/17b (§VII-C, §VII-H3)",
    );
    let apps = apps_all();
    let fb = |rows: usize| {
        TranslationMode::FBarre(FBarreConfig {
            filter_rows: rows,
            ..FBarreConfig::default()
        })
    };
    // (a) hit rates at the default 256 rows.
    println!("--- (a) hit rates, 256-row filters ---");
    println!("{:<8} {:>12} {:>12}", "app", "remote hit", "local hit");
    let cfgs = vec![cfg("fb", SystemConfig::scaled().with_mode(fb(256)))];
    let results = sweep(&apps, &cfgs, SEED);
    let (mut rem, mut loc) = (Vec::new(), Vec::new());
    for (a, row) in apps.iter().zip(&results) {
        let m = &row[0];
        if m.rcf_remote_attempts > 0 {
            rem.push(m.remote_hit_rate());
        }
        if m.lcf_hits > 0 {
            loc.push(m.local_hit_rate());
        }
        println!(
            "{:<8} {:>11.1}% {:>11.1}%",
            a.name(),
            m.remote_hit_rate() * 100.0,
            m.local_hit_rate() * 100.0
        );
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "average: remote {:.1}%  local {:.1}%",
        avg(&rem) * 100.0,
        avg(&loc) * 100.0
    );
    // (b) filter-size sweep.
    println!("\n--- (b) speedup vs 256-row filters ---");
    let cfgs = vec![
        cfg("256", SystemConfig::scaled().with_mode(fb(256))),
        cfg("512", SystemConfig::scaled().with_mode(fb(512))),
        cfg("1024", SystemConfig::scaled().with_mode(fb(1024))),
    ];
    let results = sweep(&apps, &cfgs, SEED);
    for (label, i) in [("512 rows", 1usize), ("1024 rows", 2)] {
        let sps: Vec<f64> = results.iter().map(|r| speedup(&r[0], &r[i])).collect();
        println!("{label}: geomean speedup {:.3}x", geomean(sps));
    }
}
