//! Fig 1 — speedup with 8, 16, 32 and infinite PTWs.
//!
//! Paper shape: near-linear speedup with more PTWs for most (non-low)
//! applications, but *infinite* PTWs saturate around 2× — queueing is
//! removed while walk latency and PCIe remain.

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::SystemConfig;

fn main() {
    banner(
        "Fig 1",
        "speedup over 8 PTWs with 16, 32 and infinite PTWs (baseline translation)",
        "Fig 1 (introduction)",
    );
    let base = SystemConfig::scaled();
    let cfgs = vec![
        cfg("8 PTWs", base.clone().with_ptws(Some(8))),
        cfg("16 PTWs", base.clone().with_ptws(Some(16))),
        cfg("32 PTWs", base.clone().with_ptws(Some(32))),
        cfg("inf PTWs", base.clone().with_ptws(None)),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
}
