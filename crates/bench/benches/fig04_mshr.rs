//! Fig 4 — performance impact of L2 TLB MSHRs.
//!
//! Paper shape: doubling (and quadrupling) the MSHRs gives ~6% average
//! speedup, with most applications flat — the bottleneck is translation
//! *processing*, not miss tracking.

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::SystemConfig;

fn main() {
    banner(
        "Fig 4",
        "speedup with 1x/2x/4x L2 TLB MSHRs (baseline translation)",
        "Fig 4 (§III-B)",
    );
    let mk = |mult: usize| {
        let mut c = SystemConfig::scaled();
        c.l2_tlb_mshrs *= mult;
        c
    };
    let cfgs = vec![
        cfg("16 MSHRs", mk(1)),
        cfg("32 MSHRs", mk(2)),
        cfg("64 MSHRs", mk(4)),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
}
