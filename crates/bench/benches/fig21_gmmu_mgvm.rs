//! Fig 21 — Barre Chord on a GMMU-integrated platform (MGvm).
//!
//! MGvm walks a distributed page table with per-chiplet GMMUs; Barre
//! Chord on top removes local *and* remote walks via group calculation.
//! Paper shape: +1.28× average speedup and >30% fewer remote page-table
//! walks.

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, MmuKind, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 21",
        "MGvm (per-chiplet GMMU) with and without Barre Chord",
        "Fig 21 (§VII-F)",
    );
    let mut mgvm = SystemConfig::scaled();
    mgvm.mmu = MmuKind::Gmmu;
    let with_barre = mgvm
        .clone()
        .with_mode(TranslationMode::FBarre(Default::default()));
    let cfgs = vec![cfg("MGvm", mgvm), cfg("MGvm+BarreChord", with_barre)];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    println!(
        "{:<8} {:>10} {:>16} {:>16}",
        "app", "speedup", "remote walks", "remote walks +BC"
    );
    let mut sps = Vec::new();
    let (mut rw0, mut rw1) = (0u64, 0u64);
    for (a, row) in apps.iter().zip(&results) {
        let sp = speedup(&row[0], &row[1]);
        sps.push(sp);
        rw0 += row[0].gmmu_remote_walks;
        rw1 += row[1].gmmu_remote_walks;
        println!(
            "{:<8} {sp:>9.3}x {:>16} {:>16}",
            a.name(),
            row[0].gmmu_remote_walks,
            row[1].gmmu_remote_walks
        );
    }
    println!("\ngeomean speedup: {:.3}x", geomean(sps));
    println!(
        "total remote page-table walks removed: {:.1}%",
        if rw0 > 0 {
            (1.0 - rw1 as f64 / rw0 as f64) * 100.0
        } else {
            0.0
        }
    );
}
