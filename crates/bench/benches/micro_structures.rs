//! Microbenchmarks for the core hardware structures: cuckoo-filter
//! operations, TLB lookups, PEC PFN calculation, and 4-level page-table
//! walks. These measure the simulator's own data structures (host-side
//! nanoseconds, not simulated cycles).
//!
//! Hand-rolled timing harness (median of repeated timed batches) — the
//! workspace builds with path-only dependencies, so criterion is out.

use std::hint::black_box;
use std::time::Instant;

use barre_core::driver::{BarreAllocator, MappingPlan};
use barre_core::{CoalInfo, CoalMode, PecLogic};
use barre_filters::{CuckooFilter, Filter};
use barre_mem::virt_alloc::VpnRange;
use barre_mem::{ChipletId, FrameAllocator, PageTable, Vpn};
use barre_tlb::{Tlb, TlbKey};

/// Times `op` over `iters` calls per batch, repeating `batches` times;
/// prints the median per-call nanoseconds.
fn bench(name: &str, iters: u64, mut op: impl FnMut()) {
    const BATCHES: usize = 9;
    // Warm-up batch.
    for _ in 0..iters {
        op();
    }
    let mut per_call: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                op();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{name:<40} {:>10.1} ns/op (median of {BATCHES})",
        per_call[BATCHES / 2]
    );
}

fn bench_cuckoo() {
    let mut f = CuckooFilter::paper_default(1);
    let mut k = 0u64;
    bench("cuckoo_filter/insert_remove", 100_000, || {
        f.insert(black_box(k));
        f.remove(black_box(k));
        k = k.wrapping_add(1);
    });
    let mut f = CuckooFilter::paper_default(2);
    for k in 0..512u64 {
        f.insert(k);
    }
    let mut k = 0u64;
    bench("cuckoo_filter/contains_hit", 100_000, || {
        let hit = f.contains(black_box(k % 512));
        k += 1;
        black_box(hit);
    });
}

fn bench_tlb() {
    let mut t: Tlb<u64> = Tlb::new(512, 16);
    for v in 0..512u64 {
        t.insert(
            TlbKey {
                asid: 0,
                vpn: Vpn(v),
            },
            v,
        );
    }
    let mut v = 0u64;
    bench("l2_tlb/lookup_hit_512e_16w", 100_000, || {
        let r = t.lookup(black_box(TlbKey {
            asid: 0,
            vpn: Vpn(v % 512),
        }));
        v += 1;
        black_box(r.copied());
    });
}

fn fig7a() -> (PecLogic, barre_core::PecEntry, barre_mem::Pte) {
    let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(4096)).collect();
    let mut d = BarreAllocator::new(CoalMode::Base, 1);
    let plan = MappingPlan::interleaved(
        VpnRange {
            start: Vpn(0x1),
            pages: 12,
        },
        3,
        &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)],
    );
    let out = d.allocate(&plan, &mut frames).unwrap();
    let pte = out.ptes.iter().find(|(v, _)| *v == Vpn(0x4)).unwrap().1;
    (PecLogic::new(CoalMode::Base), out.pec, pte)
}

fn bench_pec() {
    let (logic, entry, pte) = fig7a();
    let info = CoalInfo::decode(pte.coal_bits(), CoalMode::Base).unwrap();
    bench("pec_logic/calc_pfn", 100_000, || {
        black_box(logic.calc_pfn(
            black_box(Vpn(0x4)),
            black_box(pte.pfn()),
            &info,
            &entry,
            black_box(Vpn(0xA)),
        ));
    });
    bench("pec_logic/coalescing_candidates", 100_000, || {
        black_box(logic.coalescing_candidates(&entry, black_box(Vpn(0x4)), 2));
    });
}

fn bench_page_table() {
    let mut pt = PageTable::new(0);
    for v in 0..4096u64 {
        pt.map(
            Vpn(v * 7),
            barre_mem::Pte::new(
                barre_mem::GlobalPfn::compose(ChipletId((v % 4) as u8), barre_mem::LocalPfn(v)),
                barre_mem::PteFlags::default(),
            ),
        );
    }
    let mut v = 0u64;
    bench("page_table/walk_4_levels", 100_000, || {
        let r = pt.walk(black_box(Vpn((v % 4096) * 7)));
        v += 1;
        black_box(r);
    });
}

fn main() {
    println!("micro_structures: host-side structure microbenchmarks");
    bench_cuckoo();
    bench_tlb();
    bench_pec();
    bench_page_table();
}
