//! Criterion microbenchmarks for the core hardware structures:
//! cuckoo-filter operations, TLB lookups, PEC PFN calculation, and
//! 4-level page-table walks. These measure the simulator's own data
//! structures (host-side nanoseconds, not simulated cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use barre_core::driver::{BarreAllocator, MappingPlan};
use barre_core::{CoalInfo, CoalMode, PecLogic};
use barre_filters::{CuckooFilter, Filter};
use barre_mem::virt_alloc::VpnRange;
use barre_mem::{ChipletId, FrameAllocator, PageTable, Vpn};
use barre_tlb::{Tlb, TlbKey};

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo_filter");
    g.bench_function("insert_remove", |b| {
        let mut f = CuckooFilter::paper_default(1);
        let mut k = 0u64;
        b.iter(|| {
            f.insert(black_box(k));
            f.remove(black_box(k));
            k = k.wrapping_add(1);
        });
    });
    g.bench_function("contains_hit", |b| {
        let mut f = CuckooFilter::paper_default(2);
        for k in 0..512u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            let hit = f.contains(black_box(k % 512));
            k += 1;
            black_box(hit)
        });
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("l2_tlb");
    g.bench_function("lookup_hit_512e_16w", |b| {
        let mut t: Tlb<u64> = Tlb::new(512, 16);
        for v in 0..512u64 {
            t.insert(TlbKey { asid: 0, vpn: Vpn(v) }, v);
        }
        let mut v = 0u64;
        b.iter(|| {
            let r = t.lookup(black_box(TlbKey { asid: 0, vpn: Vpn(v % 512) }));
            v += 1;
            black_box(r.copied())
        });
    });
    g.finish();
}

fn fig7a() -> (PecLogic, barre_core::PecEntry, barre_mem::Pte) {
    let mut frames: Vec<FrameAllocator> = (0..4).map(|_| FrameAllocator::new(4096)).collect();
    let mut d = BarreAllocator::new(CoalMode::Base, 1);
    let plan = MappingPlan::interleaved(
        VpnRange { start: Vpn(0x1), pages: 12 },
        3,
        &[ChipletId(0), ChipletId(1), ChipletId(2), ChipletId(3)],
    );
    let out = d.allocate(&plan, &mut frames).unwrap();
    let pte = out.ptes.iter().find(|(v, _)| *v == Vpn(0x4)).unwrap().1;
    (PecLogic::new(CoalMode::Base), out.pec, pte)
}

fn bench_pec(c: &mut Criterion) {
    let (logic, entry, pte) = fig7a();
    let info = CoalInfo::decode(pte.coal_bits(), CoalMode::Base).unwrap();
    let mut g = c.benchmark_group("pec_logic");
    g.bench_function("calc_pfn", |b| {
        b.iter(|| {
            logic.calc_pfn(
                black_box(Vpn(0x4)),
                black_box(pte.pfn()),
                &info,
                &entry,
                black_box(Vpn(0xA)),
            )
        });
    });
    g.bench_function("coalescing_candidates", |b| {
        b.iter(|| logic.coalescing_candidates(&entry, black_box(Vpn(0x4)), 2));
    });
    g.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut pt = PageTable::new(0);
    for v in 0..4096u64 {
        pt.map(
            Vpn(v * 7),
            barre_mem::Pte::new(
                barre_mem::GlobalPfn::compose(ChipletId((v % 4) as u8), barre_mem::LocalPfn(v)),
                barre_mem::PteFlags::default(),
            ),
        );
    }
    let mut g = c.benchmark_group("page_table");
    g.bench_function("walk_4_levels", |b| {
        let mut v = 0u64;
        b.iter(|| {
            let r = pt.walk(black_box(Vpn((v % 4096) * 7)));
            v += 1;
            black_box(r)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cuckoo, bench_tlb, bench_pec, bench_page_table);
criterion_main!(benches);
