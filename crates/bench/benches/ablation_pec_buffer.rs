//! Ablation — PEC buffer capacity.
//!
//! The paper fixes 5 entries ("all of our benchmark applications use up
//! to five large data") with smallest-data eviction. This ablation sweeps
//! 1–8 entries to show the design point: below the live-data count,
//! coalescing opportunities drop with the buffer.

use barre_bench::{banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, SystemConfig, TranslationMode};
use barre_workloads::AppId;

fn main() {
    banner(
        "Ablation",
        "PEC buffer entries vs F-Barre speedup",
        "design choice of §IV-E (5-entry PEC buffer)",
    );
    // Multi-dataset apps stress the buffer.
    let apps = vec![
        AppId::Fdtd2d,
        AppId::Jac2d,
        AppId::Atax,
        AppId::Bicg,
        AppId::Spmv,
    ];
    println!("{:<10} {:>14} {:>14}", "entries", "geomean sp", "coalesced");
    for entries in [1usize, 2, 3, 5, 8] {
        let base = SystemConfig::scaled();
        let mut fb = base
            .clone()
            .with_mode(TranslationMode::FBarre(Default::default()));
        fb.pec_buffer_entries = entries;
        let cfgs = vec![cfg("b", base), cfg("f", fb)];
        let results = sweep(&apps, &cfgs, SEED);
        let sps: Vec<f64> = results.iter().map(|r| speedup(&r[0], &r[1])).collect();
        let coal: u64 = results
            .iter()
            .map(|r| r[1].coalesced_translations + r[1].intra_mcm_translations)
            .sum();
        println!("{entries:<10} {:>13.3}x {coal:>14}", geomean(sps));
    }
}
