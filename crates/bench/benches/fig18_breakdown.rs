//! Fig 18 — F-Barre speedup breakdown over Barre.
//!
//! Isolates the two F-Barre optimizations: coalescing-aware PTW
//! scheduling (paper: 1.34× over Barre) and peer coalescing-information
//! sharing (paper: 1.80× over Barre combined).

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::{FBarreConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 18",
        "F-Barre feature breakdown, speedup over plain Barre",
        "Fig 18 (§VII-D)",
    );
    let base = SystemConfig::scaled();
    let fb = |ptw_sched: bool, peer: bool| {
        TranslationMode::FBarre(FBarreConfig {
            max_merged: 1,
            ptw_sched,
            peer_sharing: peer,
            ..FBarreConfig::default()
        })
    };
    let cfgs = vec![
        cfg("Barre", base.clone().with_mode(TranslationMode::Barre)),
        cfg("+PTW-sched", base.clone().with_mode(fb(true, false))),
        cfg("+peer-sharing", base.clone().with_mode(fb(false, true))),
        cfg("+both", base.clone().with_mode(fb(true, true))),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
}
