//! Fig 27b — F-Barre combined with a 2048-entry IOMMU TLB.
//!
//! Paper shape: even with an IOMMU TLB (200-cycle access) absorbing
//! walks, F-Barre adds ~1.22× (up to 2.35×) — it removes the PCIe round
//! trip itself, not just the walk.

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::{SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 27b",
        "F-Barre speedup on a system with a 2048-entry IOMMU TLB",
        "Fig 27b (§VII-J)",
    );
    let mut base = SystemConfig::scaled();
    base.iommu_tlb = Some((2048, 8, 200));
    let cfgs = vec![
        cfg("IOMMU-TLB", base.clone()),
        cfg(
            "IOMMU-TLB+F-Barre",
            base.clone()
                .with_mode(TranslationMode::FBarre(Default::default())),
        ),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
}
