//! Table I — per-application L2 TLB MPKI and intensity class.
//!
//! Prints the paper's measured MPKI next to this reproduction's, under
//! the scaled baseline configuration. Absolute values differ (different
//! simulator scale and inputs); the low/mid/high classes and the
//! within-class ordering are the reproduction target.

use barre_bench::{apps_all, banner, SEED};
use barre_system::{run_app, SystemConfig};

fn main() {
    banner(
        "Table I",
        "benchmark L2 TLB MPKI (baseline, LASP, 4 chiplets)",
        "Table I of the paper",
    );
    let cfg = SystemConfig::scaled();
    println!(
        "{:<8} {:<20} {:>12} {:>12} {:>8} {:>8}",
        "abbr", "app", "paper MPKI", "measured", "class", "match"
    );
    let mut class_matches = 0;
    let apps = apps_all();
    for app in &apps {
        let m = run_app(*app, &cfg, SEED).expect("Table I run failed");
        let measured = m.mpki();
        let class_of = |mpki: f64| {
            if mpki < 2.0 {
                "low"
            } else if mpki < 100.0 {
                "mid"
            } else {
                "high"
            }
        };
        let matched = class_of(measured) == app.category().to_string();
        if matched {
            class_matches += 1;
        }
        println!(
            "{:<8} {:<20} {:>12.3} {:>12.2} {:>8} {:>8}",
            app.name(),
            app.full_name(),
            app.paper_mpki(),
            measured,
            app.category(),
            if matched { "yes" } else { "~" }
        );
    }
    println!("\nclass agreement: {class_matches}/{} apps", apps.len());
}
