//! Fig 2 — 2 MiB super pages under run-time migration.
//!
//! Paper shape: some applications gain TLB reach, but apps with shared
//! hot data (`fwt`, `matr`) slow down badly — a 2 MiB migration moves
//! 512× the data and coarse placement concentrates hot pages on fewer
//! chiplets.

use barre_bench::{apps_all, banner, cfg, sweep_specs_or_exit, SEED};
use barre_mem::PageSize;
use barre_system::{MigrationConfig, SystemConfig};
use barre_workloads::WorkloadSpec;

fn main() {
    banner(
        "Fig 2",
        "2 MiB super page speedup over 4 KiB pages, migration enabled",
        "Fig 2 (introduction)",
    );
    // 8x inputs so each data object spans many 2 MiB pages (the paper's
    // full-size workloads do); tiny inputs collapse to a single super
    // page and ping-pong pathologically.
    let specs: Vec<WorkloadSpec> = apps_all()
        .into_iter()
        .map(|app| WorkloadSpec { app, scale: 8 })
        .collect();
    let base = SystemConfig::scaled().with_migration(Some(MigrationConfig::default()));
    let cfgs = vec![
        cfg("4KB+migration", base.clone()),
        cfg(
            "2MB+migration",
            base.clone().with_page_size(PageSize::Size2M),
        ),
    ];
    let results = sweep_specs_or_exit(&specs, &cfgs, SEED);
    // Reuse the speedup printer via the app list.
    let apps: Vec<_> = specs.iter().map(|s| s.app).collect();
    barre_bench::print_speedups(&apps, &cfgs, &results);
}
