//! Ablation — speculative multicast of calculated PFNs.
//!
//! §IV-B: "Barre can speculatively calculate and send all the other PFNs
//! of the coalescing group to corresponding GPUs upon one translation.
//! However, our experiments show this multicasting drops performance due
//! to the limited outbound bandwidth of IOMMU. Thus, we configure Barre
//! to cover the translations for the pending requests only."
//!
//! This ablation reproduces that design decision: Barre with multicast
//! on/off.

use barre_bench::{banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, SystemConfig, TranslationMode};
use barre_workloads::AppId;

fn main() {
    banner(
        "Ablation",
        "Barre pending-only coalescing vs speculative multicast",
        "design choice of §IV-B (multicast rejected)",
    );
    // Coalescing-friendly apps where multicast has the most to push.
    let apps = vec![
        AppId::Jac2d,
        AppId::St2d,
        AppId::Fdtd2d,
        AppId::Fwt,
        AppId::Gups,
    ];
    let base = SystemConfig::scaled();
    let barre = base.clone().with_mode(TranslationMode::Barre);
    let mut multicast = base.clone().with_mode(TranslationMode::Barre);
    multicast.barre_multicast = true;
    let cfgs = vec![
        cfg("baseline", base),
        cfg("Barre", barre),
        cfg("Barre+multicast", multicast),
    ];
    let results = sweep(&apps, &cfgs, SEED);
    println!(
        "{:<8} {:>12} {:>18} {:>14} {:>14}",
        "app", "Barre", "Barre+multicast", "pcie KB", "pcie KB (mc)"
    );
    let (mut sp_b, mut sp_m) = (Vec::new(), Vec::new());
    for (a, row) in apps.iter().zip(&results) {
        let b = speedup(&row[0], &row[1]);
        let m = speedup(&row[0], &row[2]);
        sp_b.push(b);
        sp_m.push(m);
        println!(
            "{:<8} {b:>11.3}x {m:>17.3}x {:>14} {:>14}",
            a.name(),
            row[1].pcie_bytes / 1024,
            row[2].pcie_bytes / 1024
        );
    }
    println!(
        "\ngeomean: Barre {:.3}x, Barre+multicast {:.3}x (paper: multicast loses)",
        geomean(sp_b),
        geomean(sp_m)
    );
}
