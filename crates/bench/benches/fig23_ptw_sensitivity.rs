//! Fig 23 — F-Barre speedup with 8, 16 and 32 PTWs.
//!
//! Paper shape: F-Barre's speedup *shrinks* as PTWs grow (2.12× at 8,
//! 1.86× at 16, 1.51× at 32) but stays positive — Barre Chord substitutes
//! for PTW parallelism.

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 23",
        "F-Barre speedup over same-PTW baseline, at 8/16/32 PTWs",
        "Fig 23 (§VII-H2)",
    );
    let apps = apps_all();
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut rows = vec![String::new(); apps.len()];
    for (ci, ptws) in [8usize, 16, 32].iter().enumerate() {
        let base = SystemConfig::scaled().with_ptws(Some(*ptws));
        let fbarre = base
            .clone()
            .with_mode(TranslationMode::FBarre(Default::default()));
        let cfgs = vec![cfg("base", base), cfg("fb", fbarre)];
        let results = sweep(&apps, &cfgs, SEED);
        for (i, row) in results.iter().enumerate() {
            let sp = speedup(&row[0], &row[1]);
            per_cfg[ci].push(sp);
            rows[i].push_str(&format!(" {sp:>9.3}"));
        }
    }
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "app", "8 PTWs", "16 PTWs", "32 PTWs"
    );
    for (a, r) in apps.iter().zip(&rows) {
        println!("{:<8}{r}", a.name());
    }
    println!(
        "{:<8} {:>9.3} {:>9.3} {:>9.3}",
        "geomean",
        geomean(per_cfg[0].iter().copied()),
        geomean(per_cfg[1].iter().copied()),
        geomean(per_cfg[2].iter().copied())
    );
}
