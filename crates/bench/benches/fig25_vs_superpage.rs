//! Fig 25 — Barre Chord (4 KiB) vs super page (2 MiB), migration enabled.
//!
//! Paper shape: Barre Chord ≈ 1.22× over the super page on average;
//! linear-access apps (`fft`) can favor the super page, shared-data apps
//! (`pr`, `fwt`) favor Barre Chord by >2×.

use barre_bench::{apps_all, banner, cfg, SEED};
use barre_mem::PageSize;
use barre_system::{geomean, speedup, MigrationConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 25",
        "Barre Chord @4KB vs super page @2MB, both with ACUD migration",
        "Fig 25 (§VII-H5)",
    );
    let migr = Some(MigrationConfig::default());
    let superpage = SystemConfig::scaled()
        .with_page_size(PageSize::Size2M)
        .with_migration(migr);
    let barre = SystemConfig::scaled()
        .with_mode(TranslationMode::FBarre(Default::default()))
        .with_migration(migr);
    let cfgs = vec![cfg("superpage", superpage), cfg("BarreChord", barre)];
    // 8x inputs: see fig02's note — super pages need footprints that
    // span many 2 MiB pages to be a meaningful contender.
    let specs: Vec<barre_workloads::WorkloadSpec> = apps_all()
        .into_iter()
        .map(|app| barre_workloads::WorkloadSpec { app, scale: 8 })
        .collect();
    let apps: Vec<_> = specs.iter().map(|s| s.app).collect();
    let results = barre_bench::sweep_specs_or_exit(&specs, &cfgs, SEED);
    println!("{:<8} {:>22}", "app", "BarreChord/superpage");
    let mut sps = Vec::new();
    for (a, row) in apps.iter().zip(&results) {
        let sp = speedup(&row[0], &row[1]);
        sps.push(sp);
        println!("{:<8} {sp:>21.3}x", a.name());
    }
    println!("geomean: {:.3}x", geomean(sps));
}
