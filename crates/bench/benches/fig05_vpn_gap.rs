//! Fig 5 — VPN-gap distribution of consecutive IOMMU requests.
//!
//! Compares private L2 TLBs against the hypothetical shared L2 TLB.
//! Paper shape: private TLBs produce more and more-irregular spikes
//! (scattered requests), making prefetch prediction hopeless.

use barre_bench::{banner, SEED};
use barre_system::{run_app, SystemConfig, TranslationMode};
use barre_workloads::AppId;

fn main() {
    banner(
        "Fig 5",
        "power-of-two histogram of |VPN_i − VPN_(i−1)| at the IOMMU",
        "Fig 5 (§III-C)",
    );
    for app in [AppId::Jac2d, AppId::Atax, AppId::Gups] {
        for (label, cfg) in [
            ("private L2 TLBs", SystemConfig::scaled()),
            (
                "shared L2 TLB",
                SystemConfig::scaled().with_mode(TranslationMode::SharedL2Ideal),
            ),
        ] {
            let m = run_app(app, &cfg, SEED).expect("Fig 5 run failed");
            println!("\n{} / {label}: {}", app.name(), m.vpn_gap);
            print!("  gap<=: ");
            for (bound, count) in m.vpn_gap.buckets() {
                print!("{bound}:{count} ");
            }
            println!();
            println!(
                "  fraction of gaps <= 8 pages: {:.1}%  (higher = more predictable)",
                m.vpn_gap.fraction_le(8) * 100.0
            );
        }
    }
}
