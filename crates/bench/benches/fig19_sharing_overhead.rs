//! Fig 19 — traffic overhead of coalescing-information sharing.
//!
//! Compares real F-Barre (filter updates and peer probes consuming mesh
//! bandwidth, best-effort drops) against an oracle where sharing happens
//! at fixed latency without occupying the bus. Paper shape: F-Barre
//! reaches over 80% of the oracle's performance.

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, FBarreConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 19",
        "F-Barre vs oracle (traffic-free) coalescing-information sharing",
        "Fig 19 (§VII-E)",
    );
    let base = SystemConfig::scaled();
    let fb = |oracle: bool| {
        TranslationMode::FBarre(FBarreConfig {
            oracle_traffic: oracle,
            ..FBarreConfig::default()
        })
    };
    let cfgs = vec![
        cfg("baseline", base.clone()),
        cfg("F-Barre", base.clone().with_mode(fb(false))),
        cfg("Oracle", base.clone().with_mode(fb(true))),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    println!(
        "{:<8} {:>10} {:>10} {:>14}",
        "app", "F-Barre", "Oracle", "% of oracle"
    );
    let mut fracs = Vec::new();
    for (a, row) in apps.iter().zip(&results) {
        let sp_f = speedup(&row[0], &row[1]);
        let sp_o = speedup(&row[0], &row[2]);
        let frac = if sp_o > 0.0 { sp_f / sp_o * 100.0 } else { 0.0 };
        fracs.push(frac / 100.0);
        println!("{:<8} {sp_f:>9.3}x {sp_o:>9.3}x {frac:>13.1}%", a.name());
    }
    println!(
        "\ngeomean fraction of theoretical max: {:.1}%",
        geomean(fracs) * 100.0
    );
}
