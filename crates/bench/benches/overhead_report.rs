//! §VII-K — hardware overhead.
//!
//! Paper: 4 cuckoo filters + 5-entry PEC buffer = 4.57 KiB per chiplet,
//! 4.21% of a GPU L2 TLB (CACTI); the ATS response grows by 10+118 bits;
//! the filters' theoretical false-positive rate is 1.53%.

use barre_bench::banner;
use barre_core::overhead::{OverheadParams, OverheadReport};
use barre_filters::CuckooFilter;

fn main() {
    banner("§VII-K", "hardware overhead accounting", "§VII-K");
    let r = OverheadReport::paper_default();
    println!(
        "cuckoo filter           : {} bits (256 rows x 4 ways x 9 b)",
        r.filter_bits
    );
    println!(
        "filters per chiplet     : {} (1 LCF + {} RCFs)",
        r.filters_per_chiplet,
        r.filters_per_chiplet - 1
    );
    println!(
        "PEC buffer              : {} bits (5 x 118 b)",
        r.pec_buffer_bits
    );
    println!(
        "per-chiplet storage     : {:.2} KiB   (paper: 4.57 KiB)",
        r.per_chiplet_kib()
    );
    println!(
        "ratio to L2 TLB         : {:.2}%     (paper: 4.21–4.22%)",
        r.ratio_to_l2_tlb * 100.0
    );
    println!(
        "ATS response extra bits : {}        (paper: 10 + 118)",
        r.ats_extra_bits
    );
    let f = CuckooFilter::paper_default(1);
    println!(
        "filter theoretical FP    : {:.2}%     (paper: 1.53%)",
        f.theoretical_fp_rate() * 100.0
    );
    println!("\nscaling with chiplet count:");
    for n in [2u64, 4, 8, 16] {
        let p = OverheadParams {
            n_chiplets: n,
            ..OverheadParams::default()
        };
        let r = OverheadReport::compute(p);
        println!(
            "  {n:>2} chiplets: {:.2} KiB per chiplet",
            r.per_chiplet_kib()
        );
    }
}
