//! Table II — simulation parameters.
//!
//! Dumps the paper-faithful configuration and the scaled configuration
//! every bench actually runs.

use barre_bench::banner;
use barre_system::SystemConfig;

fn main() {
    banner("Table II", "simulation parameters", "Table II of the paper");
    println!("--- paper configuration ---");
    print!("{}", SystemConfig::paper().table2());
    println!("\n--- scaled configuration (used by benches) ---");
    print!("{}", SystemConfig::scaled().table2());
}
