//! Fig 15 — overall performance comparison.
//!
//! Speedup over the private-TLB baseline for Valkyrie, Least, Barre,
//! F-Barre-NoMerge, F-Barre-2Merge and F-Barre-4Merge, for all 19
//! applications plus the geometric mean.
//!
//! Paper shape: Barre beats Valkyrie/Least by ~10–13% on average;
//! F-Barre-NoMerge ≈ 1.24× over Barre (1.36× over Least); merged variants
//! scale further (2Merge ≈ 1.34×, 4Merge ≈ 1.53× over F-Barre-NoMerge).

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::{FBarreConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 15",
        "overall speedup vs baseline, all translation architectures",
        "Fig 15 (evaluation §VII-A)",
    );
    let base = SystemConfig::scaled();
    let fb = |max_merged: u8| {
        TranslationMode::FBarre(FBarreConfig {
            max_merged,
            ..FBarreConfig::default()
        })
    };
    let cfgs = vec![
        cfg("baseline", base.clone()),
        cfg(
            "Valkyrie",
            base.clone().with_mode(TranslationMode::Valkyrie),
        ),
        cfg("Least", base.clone().with_mode(TranslationMode::Least)),
        cfg("Barre", base.clone().with_mode(TranslationMode::Barre)),
        cfg("F-Barre-NoMerge", base.clone().with_mode(fb(1))),
        cfg("F-Barre-2Merge", base.clone().with_mode(fb(2))),
        cfg("F-Barre-4Merge", base.clone().with_mode(fb(4))),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
}
