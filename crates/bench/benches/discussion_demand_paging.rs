//! §VI Discussion — on-demand paging with coalescing-group-granular fetch.
//!
//! The paper's baseline premaps pages ("to avoid page fault overhead,
//! similar to previous works") but §VI argues Barre integrates with
//! on-demand paging by fetching/evicting **in units of coalescing
//! groups**. This bench quantifies that: premapped vs single-page demand
//! faults vs group-granular fetch.

use barre_bench::{banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, DemandPagingConfig, SystemConfig, TranslationMode};
use barre_workloads::AppId;

fn main() {
    banner(
        "§VI",
        "on-demand paging: single-page faults vs coalescing-group fetch",
        "Discussion §VI (Support for on-demand paging & migration)",
    );
    let apps = vec![
        AppId::Jac2d,
        AppId::St2d,
        AppId::Fwt,
        AppId::Lu,
        AppId::Gups,
    ];
    let fb = TranslationMode::FBarre(Default::default());
    let premap = SystemConfig::scaled().with_mode(fb);
    let mut single = premap.clone();
    single.demand_paging = Some(DemandPagingConfig {
        fault_latency: 20_000,
        group_fetch: false,
    });
    let mut grouped = premap.clone();
    grouped.demand_paging = Some(DemandPagingConfig {
        fault_latency: 20_000,
        group_fetch: true,
    });
    let cfgs = vec![
        cfg("premapped", premap),
        cfg("demand-single", single),
        cfg("demand-group", grouped),
    ];
    let results = sweep(&apps, &cfgs, SEED);
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10} {:>14}",
        "app", "faults(1pg)", "faults(grp)", "sp(1pg)", "sp(grp)", "pages/fault"
    );
    let (mut s1, mut s2) = (Vec::new(), Vec::new());
    for (a, row) in apps.iter().zip(&results) {
        let sp1 = speedup(&row[1], &row[0]); // premap over single-page
        let sp2 = speedup(&row[2], &row[0]); // premap over grouped
                                             // Report how much of the demand-paging penalty group fetch recovers.
        s1.push(speedup(&row[0], &row[1]));
        s2.push(speedup(&row[0], &row[2]));
        let ppf = if row[2].page_faults > 0 {
            row[2].demand_pages_mapped as f64 / row[2].page_faults as f64
        } else {
            0.0
        };
        let _ = (sp1, sp2);
        println!(
            "{:<8} {:>12} {:>12} {:>9.3}x {:>9.3}x {:>14.2}",
            a.name(),
            row[1].page_faults,
            row[2].page_faults,
            speedup(&row[0], &row[1]),
            speedup(&row[0], &row[2]),
            ppf
        );
    }
    println!(
        "\ngeomean vs premapped: single-page {:.3}x, group-fetch {:.3}x",
        geomean(s1),
        geomean(s2)
    );
    println!("(group fetch should take ~group-size fewer faults and recover");
    println!(" most of the demand-paging penalty, §VI)");
}
