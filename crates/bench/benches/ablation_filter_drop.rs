//! Ablation — best-effort filter-update delivery.
//!
//! §V-A2 chooses unacknowledged, droppable filter updates ("not in the
//! critical path"); dropped updates are why the remote hit rate sits at
//! ~75% rather than ~98% (Fig 17a). This ablation contrasts the
//! best-effort mesh path with the zero-cost oracle delivery to bound what
//! guaranteed delivery could buy.

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, FBarreConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Ablation",
        "best-effort vs oracle filter-update delivery",
        "design choice of §V-A2 (best-effort updates)",
    );
    let base = SystemConfig::scaled();
    let fb = |oracle: bool| {
        base.clone()
            .with_mode(TranslationMode::FBarre(FBarreConfig {
                oracle_traffic: oracle,
                ..FBarreConfig::default()
            }))
    };
    let cfgs = vec![
        cfg("baseline", base.clone()),
        cfg("best-effort", fb(false)),
        cfg("oracle", fb(true)),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    let (mut sp_be, mut sp_or, mut drops, mut sent) = (Vec::new(), Vec::new(), 0u64, 0u64);
    for row in &results {
        sp_be.push(speedup(&row[0], &row[1]));
        sp_or.push(speedup(&row[0], &row[2]));
        drops += row[1].filter_updates_dropped;
        sent += row[1].filter_updates_sent;
    }
    println!("best-effort geomean speedup : {:.3}x", geomean(sp_be));
    println!("oracle      geomean speedup : {:.3}x", geomean(sp_or));
    println!(
        "filter updates dropped      : {drops}/{sent} ({:.2}%)",
        if sent > 0 {
            drops as f64 / sent as f64 * 100.0
        } else {
            0.0
        }
    );
}
