//! Fig 22 — Barre Chord with counter-based page migration (ACUD).
//!
//! Migrated pages leave their coalescing group (coal_bitmap exclusion)
//! without penalty; the remaining members keep calculating. Paper shape:
//! Barre Chord + ACUD ≈ 1.20× over ACUD alone.

use barre_bench::{apps_all, banner, cfg, print_speedups, sweep, SEED};
use barre_system::{MigrationConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 22",
        "speedup of ACUD+BarreChord over ACUD (migration threshold 16)",
        "Fig 22 (§VII-G)",
    );
    let base = SystemConfig::scaled().with_migration(Some(MigrationConfig::default()));
    let cfgs = vec![
        cfg("ACUD", base.clone()),
        cfg(
            "ACUD+BarreChord",
            base.clone()
                .with_mode(TranslationMode::FBarre(Default::default())),
        ),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    print_speedups(&apps, &cfgs, &results);
    let total_migr: u64 = results.iter().map(|r| r[1].migrations).sum();
    println!("\ntotal migrations under ACUD+BarreChord: {total_migr}");
}
