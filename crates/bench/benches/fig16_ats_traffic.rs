//! Fig 16 — ATS handling efficiency.
//!
//! (a) mean ATS packet processing-time reduction vs baseline,
//! (b) fraction of IOMMU translations served by PEC calculation,
//! (c) ATS packet-traffic reduction.
//!
//! Paper shape: Barre cuts ATS processing time ~12.6% and coalesces ~58%
//! of translations; F-Barre cuts processing time ~28% and traffic by ~53%
//! (up to ~99%), with a *lower* IOMMU-side coalescing rate (~32%) because
//! most coalescing moves inside the MCM.

use barre_bench::{apps_all, banner, cfg, sweep, SEED};
use barre_system::{SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 16",
        "ATS processing time, coalesced fraction, traffic reduction",
        "Fig 16a/16b/16c (§VII-B)",
    );
    let base = SystemConfig::scaled();
    let cfgs = vec![
        cfg("baseline", base.clone()),
        cfg("Barre", base.clone().with_mode(TranslationMode::Barre)),
        cfg(
            "F-Barre",
            base.clone()
                .with_mode(TranslationMode::FBarre(Default::default())),
        ),
    ];
    let apps = apps_all();
    let results = sweep(&apps, &cfgs, SEED);
    println!(
        "{:<8} {:>12} {:>12} | {:>10} {:>10} | {:>12}",
        "app", "ats-t Barre", "ats-t F-B", "coal% B", "coal% F-B", "traffic F-B"
    );
    let (mut t_b, mut t_f, mut tr_f, mut co_b, mut co_f) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (a, row) in apps.iter().zip(&results) {
        let cut = |i: usize| {
            if row[0].mean_ats_latency() == 0.0 {
                0.0
            } else {
                (1.0 - row[i].mean_ats_latency() / row[0].mean_ats_latency()) * 100.0
            }
        };
        let traffic_cut = |i: usize| {
            if row[0].ats_requests == 0 {
                0.0
            } else {
                (1.0 - row[i].ats_requests as f64 / row[0].ats_requests as f64) * 100.0
            }
        };
        t_b.push(cut(1));
        t_f.push(cut(2));
        tr_f.push(traffic_cut(2));
        co_b.push(row[1].coalescing_rate() * 100.0);
        co_f.push(row[2].coalescing_rate() * 100.0);
        println!(
            "{:<8} {:>11.1}% {:>11.1}% | {:>9.1}% {:>9.1}% | {:>11.1}%",
            a.name(),
            cut(1),
            cut(2),
            row[1].coalescing_rate() * 100.0,
            row[2].coalescing_rate() * 100.0,
            traffic_cut(2),
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverages: ATS time cut Barre {:.1}% / F-Barre {:.1}%;  coalesced Barre {:.1}% / F-Barre {:.1}%;  F-Barre traffic cut {:.1}%",
        avg(&t_b), avg(&t_f), avg(&co_b), avg(&co_f), avg(&tr_f)
    );
}
