//! Fig 27a — multi-programming: two concurrent applications.
//!
//! CTA-level fine-grained sharing of two kernels with different IOMMU
//! intensities (Low/Mid/High pairings). Paper shape: ~17% average F-Barre
//! speedup; Mid-Mid benefits most (~34.7%) — Low-Low isn't translation
//! bound and High-High saturates the IOMMU either way.

use barre_bench::{banner, SEED};
use barre_system::{geomean, run_pair, speedup, SystemConfig, TranslationMode};
use barre_workloads::AppPair;

fn main() {
    banner(
        "Fig 27a",
        "F-Barre speedup for co-scheduled app pairs",
        "Fig 27a (§VII-I)",
    );
    let base = SystemConfig::scaled();
    let fb = base
        .clone()
        .with_mode(TranslationMode::FBarre(Default::default()));
    println!("{:<12} {:<14} {:>10}", "classes", "pair", "speedup");
    let mut sps = Vec::new();
    for (label, pair) in AppPair::fig27_pairs() {
        let b = run_pair(pair, &base, SEED).expect("baseline pair run failed");
        let f = run_pair(pair, &fb, SEED).expect("F-Barre pair run failed");
        let sp = speedup(&b, &f);
        sps.push(sp);
        println!("{label:<12} {:<14} {sp:>9.3}x", pair.label());
    }
    println!("\ngeomean: {:.3}x", geomean(sps));
}
