//! Fig 24 — F-Barre under 64 KiB and 2 MiB pages.
//!
//! Left: original inputs (paper: +2.5% at 64 KiB, ~0% at 2 MiB — larger
//! pages already slash ATS traffic relative to the small footprints).
//! Right: 16× inputs for a balanced app subset (paper: +67% at 64 KiB).

use barre_bench::{apps_all, apps_balanced, banner, cfg, sweep_specs_or_exit, SEED};
use barre_mem::PageSize;
use barre_system::{geomean, speedup, SystemConfig, TranslationMode};
use barre_workloads::WorkloadSpec;

fn run_side(title: &str, specs: &[WorkloadSpec], sizes: &[PageSize]) {
    println!("--- {title} ---");
    print!("{:<8}", "app");
    for ps in sizes {
        print!("{:>12}", ps.to_string());
    }
    println!();
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for spec in specs {
        print!("{:<8}", spec.app.name());
        for (si, ps) in sizes.iter().enumerate() {
            let base = SystemConfig::scaled().with_page_size(*ps);
            let fb = base
                .clone()
                .with_mode(TranslationMode::FBarre(Default::default()));
            let cfgs = vec![cfg("b", base), cfg("f", fb)];
            let r = sweep_specs_or_exit(&[*spec], &cfgs, SEED);
            let sp = speedup(&r[0][0], &r[0][1]);
            per_size[si].push(sp);
            print!("{sp:>11.3}x");
        }
        println!();
    }
    print!("{:<8}", "geomean");
    for col in &per_size {
        print!("{:>11.3}x", geomean(col.iter().copied()));
    }
    println!();
}

fn main() {
    banner(
        "Fig 24",
        "F-Barre speedup under 4KB/64KB/2MB pages; right side at 16x input",
        "Fig 24 (§VII-H4)",
    );
    let sizes = [PageSize::Size4K, PageSize::Size64K, PageSize::Size2M];
    let left: Vec<WorkloadSpec> = apps_all().iter().map(|a| a.spec()).collect();
    run_side("original input size", &left, &sizes);
    let right: Vec<WorkloadSpec> = apps_balanced()
        .iter()
        .map(|a| WorkloadSpec { app: *a, scale: 16 })
        .collect();
    run_side("16x input size (balanced subset)", &right, &sizes[..2]);
}
