//! Fig 20 — F-Barre speedup on 2–16-chiplet MCM-GPUs.
//!
//! Paper shape: speedup grows with scale (1.54×/1.86×/2.04×/2.31× at
//! 2/4/8/16 chiplets) as PCIe and PTW contention intensify. Beyond 8
//! chiplets the §VI *wide* PTE layout is used (no group expansion), so
//! F-Barre-NoMerge runs at every point for comparability.

use barre_bench::{apps_balanced, banner, cfg, sweep, SEED};
use barre_system::{geomean, speedup, FBarreConfig, SystemConfig, TranslationMode};

fn main() {
    banner(
        "Fig 20",
        "F-Barre-NoMerge speedup vs baseline at 2/4/8/16 chiplets",
        "Fig 20 (§VII-H1)",
    );
    let apps = apps_balanced();
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "app", "2 chips", "4 chips", "8 chips", "16 chips"
    );
    let mut rows = vec![String::new(); apps.len()];
    let mut geo = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let mut base = SystemConfig::scaled();
        base.topology = base.topology.with_chiplets(n);
        let fbarre = base
            .clone()
            .with_mode(TranslationMode::FBarre(FBarreConfig {
                max_merged: 1,
                ..FBarreConfig::default()
            }));
        let cfgs = vec![cfg("base", base), cfg("fb", fbarre)];
        let results = sweep(&apps, &cfgs, SEED);
        let sps: Vec<f64> = results.iter().map(|r| speedup(&r[0], &r[1])).collect();
        for (i, sp) in sps.iter().enumerate() {
            rows[i].push_str(&format!(" {sp:>9.3}"));
        }
        geo.push(geomean(sps));
    }
    for (a, r) in apps.iter().zip(&rows) {
        println!("{:<8}{r}", a.name());
    }
    println!(
        "{:<8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        "geomean", geo[0], geo[1], geo[2], geo[3]
    );
}
